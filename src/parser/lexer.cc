#include "src/parser/lexer.h"

#include <cctype>

namespace tdx {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '+';
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input,
                                    const ParseLimits& limits) {
  if (input.size() > limits.max_input_bytes) {
    return Status::ParseError(
        "input of " + std::to_string(input.size()) +
        " bytes exceeds the limit of " +
        std::to_string(limits.max_input_bytes) + " bytes at line 1, column 1");
  }
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;

  auto error = [&](const std::string& what) {
    return Status::ParseError(what + " at line " + std::to_string(line) +
                              ", column " + std::to_string(column));
  };
  bool over_budget = false;
  auto push = [&](TokenKind kind, std::string text, std::uint64_t number = 0) {
    if (tokens.size() >= limits.max_tokens) {
      over_budget = true;
      return;
    }
    tokens.push_back(Token{kind, std::move(text), number, line, column});
  };
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < input.size() && input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < input.size()) {
    if (over_budget) {
      return error("token count exceeds the limit of " +
                   std::to_string(limits.max_tokens) + " tokens");
    }
    const char c = input[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '>') {
      push(TokenKind::kArrow, "->");
      advance(2);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(");
        advance(1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")");
        advance(1);
        continue;
      case '[':
        push(TokenKind::kLBracket, "[");
        advance(1);
        continue;
      case ',':
        push(TokenKind::kComma, ",");
        advance(1);
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";");
        advance(1);
        continue;
      case ':':
        push(TokenKind::kColon, ":");
        advance(1);
        continue;
      case '&':
        push(TokenKind::kAmp, "&");
        advance(1);
        continue;
      case '=':
        push(TokenKind::kEquals, "=");
        advance(1);
        continue;
      case '@':
        push(TokenKind::kAt, "@");
        advance(1);
        continue;
      default:
        break;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < input.size() && input[j] != '"' && input[j] != '\n') ++j;
      if (j >= input.size() || input[j] != '"') {
        return error("unterminated string literal");
      }
      push(TokenKind::kString, std::string(input.substr(i + 1, j - i - 1)));
      advance(j + 1 - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      std::uint64_t value = 0;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        value = value * 10 + static_cast<std::uint64_t>(input[j] - '0');
        ++j;
      }
      push(TokenKind::kNumber, std::string(input.substr(i, j - i)), value);
      advance(j - i);
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < input.size() && IsIdentCont(input[j])) ++j;
      push(TokenKind::kIdentifier, std::string(input.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  if (over_budget) {
    return error("token count exceeds the limit of " +
                 std::to_string(limits.max_tokens) + " tokens");
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, line, column});
  return tokens;
}

}  // namespace tdx
