// Pretty-printers that render instances the way the paper displays them:
// one aligned table per relation (Figures 4-9) and per-snapshot listings
// for abstract views (Figures 1-3). Used by the examples and the
// paper-figure regression tests.

#ifndef TDX_PARSER_PRINTER_H_
#define TDX_PARSER_PRINTER_H_

#include <string>

#include "src/core/query.h"
#include "src/temporal/abstract_instance.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// One relation as an aligned table with a header row, rows in canonical
/// sorted order. Empty relations render as an empty string.
std::string RenderRelationTable(const Instance& instance, RelationId rel,
                                const Universe& u);

/// All non-empty relations of an instance, tables separated by blank lines.
std::string RenderInstanceTables(const Instance& instance, const Universe& u);

/// Concrete instance: RenderInstanceTables of the wrapped instance.
std::string RenderConcreteInstance(const ConcreteInstance& instance,
                                   const Universe& u);

/// Abstract instance as "span: facts" blocks (Figure 1 / Figure 3 style).
std::string RenderAbstractInstance(const AbstractInstance& instance,
                                   const Universe& u);

/// Answer tuples, one per line, sorted.
std::string RenderAnswers(const std::vector<Tuple>& answers,
                          const Universe& u);

/// One relation as RFC-4180-style CSV with a header row (fields quoted,
/// embedded quotes doubled), rows in canonical sorted order. Suited for
/// handing exchange results to downstream tools.
std::string RenderRelationCsv(const Instance& instance, RelationId rel,
                              const Universe& u);

}  // namespace tdx

#endif  // TDX_PARSER_PRINTER_H_
