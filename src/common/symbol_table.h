// String interning for constants, relation names, attribute names, and
// labeled-null display names.
//
// Every constant in a tdx instance is an interned symbol: a dense uint32 id
// that maps back to its spelling. Interning makes Value a trivially copyable
// handle, makes equality and hashing O(1), and is the standard technique in
// database engines for dictionary-encoding low-cardinality string columns.
//
// A SymbolTable is append-only and owned by a Universe (see value.h); ids
// are never reused and remain valid for the table's lifetime.

#ifndef TDX_COMMON_SYMBOL_TABLE_H_
#define TDX_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tdx {

/// Dense id of an interned string.
using SymbolId = std::uint32_t;

/// Append-only string interner.
class SymbolTable {
 public:
  SymbolTable() = default;

  // The table hands out ids that index into its private storage; copying
  // would silently fork the id space, so it is move-only.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  /// Interns `text`, returning its id (existing id if already interned).
  SymbolId Intern(std::string_view text);

  /// Looks up `text` without interning; returns false if absent.
  bool Lookup(std::string_view text, SymbolId* out) const;

  /// Spelling of an interned id. Precondition: id was returned by Intern.
  std::string_view Spelling(SymbolId id) const;

  /// Number of interned symbols.
  std::size_t size() const { return spellings_.size(); }

 private:
  // deque: references to stored strings stay valid across push_back, so the
  // string_view keys below never dangle (vector would move SSO buffers).
  std::deque<std::string> spellings_;
  std::unordered_map<std::string_view, SymbolId> ids_;
};

}  // namespace tdx

#endif  // TDX_COMMON_SYMBOL_TABLE_H_
