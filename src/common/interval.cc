#include "src/common/interval.h"

#include <algorithm>

namespace tdx {

Result<Interval> Interval::Make(TimePoint start, TimePoint end) {
  if (start >= end) {
    return Status::InvalidArgument("empty interval [" +
                                   TimePointToString(start) + ", " +
                                   TimePointToString(end) + ")");
  }
  return Interval(start, end);
}

std::optional<Interval> Interval::Intersect(const Interval& other) const {
  const TimePoint s = std::max(start_, other.start_);
  const TimePoint e = std::min(end_, other.end_);
  if (s >= e) return std::nullopt;
  return Interval(s, e);
}

Interval Interval::MergeWith(const Interval& other) const {
  assert(Mergeable(other));
  return Interval(std::min(start_, other.start_), std::max(end_, other.end_));
}

std::pair<Interval, Interval> Interval::SplitAt(TimePoint t) const {
  assert(start_ < t && t < end_ && "split point must be interior");
  return {Interval(start_, t), Interval(t, end_)};
}

std::string TimePointToString(TimePoint t) {
  if (t == kTimeInfinity) return "inf";
  return std::to_string(t);
}

std::string Interval::ToString() const {
  std::string out = "[";
  out += TimePointToString(start_);
  out += ", ";
  out += TimePointToString(end_);
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.ToString();
}

void AppendFragments(const Interval& iv, const std::vector<TimePoint>& cuts,
                     std::vector<Interval>* out) {
  assert(std::is_sorted(cuts.begin(), cuts.end()));
  TimePoint cur = iv.start();
  // First interior cut: strictly after the start. upper_bound lands past any
  // run of duplicates, so the `<= cur` guard below only fires on duplicates
  // of cuts consumed later in the walk (which cannot occur in a sorted
  // vector) — it is kept for parity with the tolerant contract.
  for (auto it = std::upper_bound(cuts.begin(), cuts.end(), cur);
       it != cuts.end() && *it < iv.end(); ++it) {
    if (*it <= cur) continue;
    out->emplace_back(cur, *it);
    cur = *it;
  }
  out->emplace_back(cur, iv.end());
}

std::vector<Interval> FragmentInterval(const Interval& iv,
                                       const std::vector<TimePoint>& cuts) {
  std::vector<Interval> out;
  AppendFragments(iv, cuts, &out);
  return out;
}

std::vector<TimePoint> DistinctFiniteEndpoints(const std::vector<Interval>& ivs) {
  std::vector<TimePoint> pts;
  pts.reserve(ivs.size() * 2);
  for (const Interval& iv : ivs) {
    pts.push_back(iv.start());
    if (!iv.unbounded()) pts.push_back(iv.end());
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

}  // namespace tdx
