// Source positions for parsed artifacts.
//
// The lexer stamps every token with a 1-based line and column; a SourceSpan
// records the position of the token that *introduced* a parsed object (the
// `tgd`/`egd`/`query` keyword, a relation declaration, ...). Dependencies
// and queries carry their span so that parse-time errors and static-analysis
// diagnostics (src/analysis/) can point at the offending statement instead
// of at nothing.
//
// Line 0 means "unknown": hand-built objects (tests, generators) never have
// positions, and every consumer must render them gracefully.

#ifndef TDX_COMMON_SOURCE_H_
#define TDX_COMMON_SOURCE_H_

#include <cstddef>
#include <string>

namespace tdx {

/// A 1-based (line, column) position in a program text. Default-constructed
/// spans are invalid ("unknown position").
struct SourceSpan {
  std::size_t line = 0;
  std::size_t column = 0;

  bool valid() const { return line != 0; }

  /// "line L, column C"; empty string for unknown positions.
  std::string ToString() const {
    if (!valid()) return "";
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.column == b.column;
  }
};

}  // namespace tdx

#endif  // TDX_COMMON_SOURCE_H_
