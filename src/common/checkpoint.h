// Checkpoint/resume for the chase engines.
//
// Every engine run is deterministic: tgds fire in declaration order with
// triggers in canonical order, normalization and egd fixpoints are
// deterministic functions of the instance, and fresh nulls are minted from a
// counter. A checkpoint taken at a *safe point* — a phase boundary or the
// seam between two target-tgd rounds — therefore captures everything needed
// to continue the run to a bit-identical result: the target instance
// (including interval-annotated nulls, which the `fact` statement format
// deliberately rejects — the checkpoint has its own durable encoding in
// src/parser/serialize.h), the semi-naive DeltaFrontier, per-engine
// round/phase cursors, ChaseStats, the Universe's labeled-null namespace,
// and the consumed ResourceGuard budget so a resumed run charges against
// the remaining allowance instead of a reset one.
//
// What is NOT captured: derived state. HomomorphismFinder indexes are pure
// caches rebuilt on resume; the termination certificate is recomputed from
// the mapping; the symbol table is reconstructed by re-parsing the same
// program (the checkpoint stores an FNV-1a fingerprint of the program text
// and refuses to load against a different program). The interior of an egd
// fixpoint or a normalization pass is never checkpointed — those phases are
// atomic between safe points, and a kill inside one redoes the whole phase
// identically on resume.
//
// See docs/INTERNALS.md ("Checkpointing & recovery") for the format and the
// determinism argument.

#ifndef TDX_COMMON_CHECKPOINT_H_
#define TDX_COMMON_CHECKPOINT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/resource.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/core/normalize.h"
#include "src/relational/chase.h"
#include "src/temporal/abstract_instance.h"

namespace tdx {

/// FNV-1a 64-bit fingerprint, used to bind a checkpoint to the exact
/// program text it was taken under.
std::uint64_t FingerprintText(std::string_view text);

/// A resumable snapshot of one engine run at a safe point. Built by the
/// engines (ChaseOptions::checkpointer), persisted by Checkpointer, loaded
/// with LoadChaseCheckpoint, and fed back via ChaseOptions::resume_from.
struct ChaseCheckpoint {
  /// Bumped whenever the durable encoding changes shape; ParseCheckpoint
  /// refuses versions it does not understand.
  static constexpr std::uint32_t kFormatVersion = 1;

  enum class Engine : std::uint8_t {
    kSnapshot = 0,  ///< relational/chase.h ChaseSnapshot
    kCChase = 1,    ///< core/cchase.h CChase
    kAbstract = 2,  ///< temporal/abstract_chase.h AbstractChase
  };

  Engine engine = Engine::kSnapshot;
  /// FNV-1a fingerprint of the program text the run was parsed from.
  /// Stamped by the Checkpointer; LoadChaseCheckpoint validates it.
  std::uint64_t program_fingerprint = 0;
  /// Engine-specific execution-options fingerprint ("engine=cchase
  /// semi-naive=1 ..."). Resume refuses a mismatch: different options walk
  /// a different (equally correct) trajectory, breaking bit-identity.
  /// Resource limits are deliberately NOT part of it.
  std::string config;

  /// Where in the engine the safe point sits. Values per engine:
  ///   snapshot: "init", "loop-top", "rounds"
  ///   cchase:   "init", "st-tgd", "loop-top", "rounds"
  ///   abstract: "pieces"
  std::string phase;
  /// Target-tgd rounds completed so far (snapshot and c-chase).
  std::size_t rounds = 0;
  /// Pieces fully chased and merged so far (abstract engine).
  std::size_t piece_cursor = 0;

  ChaseStats stats;  ///< certificate is not serialized; recomputed on resume
  NormalizeStats source_norm_stats;  ///< c-chase only
  NormalizeStats target_norm_stats;  ///< c-chase only
  /// Budget consumed up to the safe point; seeds the resumed run's guard.
  ResourceLedger consumed;

  /// The Universe's labeled-null namespace at the safe point: the next
  /// fresh-null id and the display names of all nulls minted so far.
  NullId next_null = 0;
  std::vector<std::string> null_names;

  /// Semi-naive frontier state (snapshot and c-chase "rounds"/"loop-top").
  bool frontier_full = true;
  std::vector<std::uint32_t> frontier_marks;

  /// Incremental-normalization watermark (c-chase, when the state was valid
  /// at the safe point — see core/normalize_incremental.h). `norm_marks`
  /// holds per-relation prefix sizes of the last normalized output,
  /// `norm_labels` its component labels flattened in relation order
  /// (sum(norm_marks) entries). Absent (valid=false) in checkpoints taken
  /// after an egd rewrite or under a non-incremental run; resume then
  /// starts with a full pass, exactly like the uninterrupted run.
  bool norm_state_valid = false;
  std::vector<std::uint32_t> norm_marks;
  std::vector<std::uint32_t> norm_labels;
  std::uint32_t norm_components = 0;

  /// The partial target (snapshot and c-chase; absent for "init").
  std::optional<Instance> target;
  /// The normalized source (c-chase, once past "init").
  std::optional<Instance> normalized_source;
  /// The merged result prefix (abstract engine): pieces [0, piece_cursor).
  std::vector<AbstractPiece> pieces;
};

/// Fills `checkpoint`'s null-namespace fields (next_null, null_names) from
/// `universe`. Engines call this while building a checkpoint.
void CaptureUniverseNulls(const Universe& universe,
                          ChaseCheckpoint* checkpoint);

/// Decides which safe points to persist and writes them durably. One
/// Checkpointer serves one engine run; engines call AtSafePoint at every
/// safe point and the checkpointer applies the cadence: phase boundaries
/// always write, round-level points write every `every_rounds`-th offer.
///
/// Writes are atomic (temp file + rename) and best-effort: a write failure
/// is recorded in last_error() and the chase continues — losing a
/// checkpoint must never lose the run. With an empty path the checkpoint is
/// only retained in memory (latest()), which is what the in-process chaos
/// tests use.
class Checkpointer {
 public:
  /// `schema` and `universe` are what the serialized instances refer to;
  /// both must outlive the Checkpointer. An empty `path` keeps checkpoints
  /// in memory only.
  Checkpointer(std::string path, const Schema* schema,
               const Universe* universe)
      : path_(std::move(path)),
        schema_(schema),
        universe_(universe),
        keep_latest_(path_.empty()) {}

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Round-level safe points persist every `every_rounds`-th offer
  /// (default 16; 1 = every safe point). Boundaries always reach the
  /// overhead throttle below.
  void set_cadence(std::size_t every_rounds) {
    every_rounds_ = every_rounds == 0 ? 1 : every_rounds;
  }
  /// Overhead budget: the cumulative time spent building and writing
  /// checkpoints is kept under `fraction` of the run's elapsed time (default
  /// 0.05). A safe point that would blow the budget — estimated by the cost
  /// of the previous persist — is skipped; the first persist is always
  /// allowed. This self-tunes: big instances cost more to snapshot, so they
  /// checkpoint less often, and the recovery window stays proportional to
  /// the run. <= 0 disables the throttle (the chaos tests persist every
  /// point to make the recovery window — and the persist pattern —
  /// deterministic).
  void set_max_overhead(double fraction) { max_overhead_ = fraction; }
  /// Program-text fingerprint stamped into every checkpoint written.
  void set_fingerprint(std::uint64_t fingerprint) {
    fingerprint_ = fingerprint;
  }
  /// Also retain the newest checkpoint in memory (implied by empty path).
  void set_keep_latest(bool keep) { keep_latest_ = keep || path_.empty(); }

  using BuildFn = std::function<ChaseCheckpoint()>;

  /// Called by engines at every safe point. `build` is only invoked when
  /// the cadence says this point persists (building a checkpoint copies the
  /// target instance — the cadence exists to amortize that). Returns true
  /// if a checkpoint was persisted.
  bool AtSafePoint(bool phase_boundary, const BuildFn& build);

  /// The newest checkpoint, when keep-latest is on.
  const std::optional<ChaseCheckpoint>& latest() const { return latest_; }
  /// First write failure, if any (OK otherwise).
  const Status& last_error() const { return last_error_; }
  /// Safe points offered / checkpoints persisted.
  std::size_t safe_points() const { return safe_points_; }
  std::size_t writes() const { return writes_; }

 private:
  std::string path_;
  const Schema* schema_;
  const Universe* universe_;
  std::size_t every_rounds_ = 16;
  double max_overhead_ = 0.05;
  std::uint64_t fingerprint_ = 0;
  bool keep_latest_;
  std::size_t safe_points_ = 0;
  std::size_t round_points_ = 0;
  std::size_t writes_ = 0;
  std::chrono::steady_clock::time_point created_ =
      std::chrono::steady_clock::now();
  std::chrono::nanoseconds total_cost_{0};
  std::chrono::nanoseconds last_cost_{0};
  std::optional<ChaseCheckpoint> latest_;
  Status last_error_ = Status::OK();
};

/// Serializes and atomically writes `checkpoint` to `path`.
Status SaveChaseCheckpoint(const ChaseCheckpoint& checkpoint,
                           const Schema& schema, const Universe& universe,
                           const std::string& path);

/// Reads, parses, and validates a checkpoint: the stored program
/// fingerprint must match `program_text` (the caller re-parses the same
/// program to rebuild the symbol table; `schema` and `universe` are the
/// re-parsed program's). Constants in the checkpoint are re-interned into
/// `universe`. The caller still passes the result to an engine via
/// resume_from, which restores the null namespace and validates the config.
Result<ChaseCheckpoint> LoadChaseCheckpoint(const std::string& path,
                                            std::string_view program_text,
                                            const Schema* schema,
                                            Universe* universe);

}  // namespace tdx

#endif  // TDX_COMMON_CHECKPOINT_H_
