// Time points and half-open time intervals [s, e).
//
// The paper (Section 2) models time as a totally ordered domain isomorphic
// to the non-negative integers N0. Concrete facts are stamped with intervals
// of the form [s, e) or [s, inf), s, e in N0. We represent a time point as a
// uint64_t and the open right endpoint "infinity" as kTimeInfinity.
//
// All interval algebra needed by the paper lives here: intersection, union
// of adjacent/overlapping intervals, adjacency (Section 2: two intervals
// [s,e) and [s',e') are adjacent iff s' = e or s = e'), containment of time
// points, and the endpoint enumeration used by the normalization algorithms
// (Section 4.2).

#ifndef TDX_COMMON_INTERVAL_H_
#define TDX_COMMON_INTERVAL_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tdx {

/// A discrete time point; the domain is N0.
using TimePoint = std::uint64_t;

/// Sentinel for the open right endpoint "infinity" in [s, inf).
inline constexpr TimePoint kTimeInfinity = UINT64_MAX;

/// A non-empty half-open interval [start, end) with end possibly infinite.
///
/// Invariant: start < end (empty intervals are not representable; the paper
/// never produces them and forbidding them removes a class of bugs).
///
/// The asserting constructor is for internal trusted callers, where the
/// invariant is established by the algebra (the assert vanishes in release
/// builds). Code handling *untrusted* endpoints — the parser and any other
/// deserialization boundary — must go through the checked factory Make(), so
/// malformed input can never construct an empty interval in a release build.
class Interval {
 public:
  /// Constructs [start, end). Asserts non-emptiness; trusted callers only.
  constexpr Interval(TimePoint start, TimePoint end) : start_(start), end_(end) {
    assert(start < end && "Interval must be non-empty");
  }

  /// Checked factory for untrusted endpoints: InvalidArgument when the
  /// interval would be empty (start >= end).
  static Result<Interval> Make(TimePoint start, TimePoint end);

  /// Constructs [start, inf).
  static constexpr Interval FromStart(TimePoint start) {
    return Interval(start, kTimeInfinity);
  }

  constexpr TimePoint start() const { return start_; }
  constexpr TimePoint end() const { return end_; }
  constexpr bool unbounded() const { return end_ == kTimeInfinity; }

  /// Number of time points covered; nullopt for unbounded intervals.
  constexpr std::optional<std::uint64_t> length() const {
    if (unbounded()) return std::nullopt;
    return end_ - start_;
  }

  /// Does this interval contain the time point `t`?
  constexpr bool Contains(TimePoint t) const { return start_ <= t && t < end_; }

  /// Does this interval contain every point of `other`?
  constexpr bool Contains(const Interval& other) const {
    return start_ <= other.start_ && other.end_ <= end_;
  }

  /// Do the two intervals share at least one time point?
  constexpr bool Overlaps(const Interval& other) const {
    return start_ < other.end_ && other.start_ < end_;
  }

  /// Adjacency per Section 2: [s,e), [s',e') are adjacent iff s' = e or
  /// s = e'. Adjacent intervals are disjoint but their union is an interval.
  constexpr bool AdjacentTo(const Interval& other) const {
    return other.start_ == end_ || start_ == other.end_;
  }

  /// Overlapping or adjacent: the union is a single interval.
  constexpr bool Mergeable(const Interval& other) const {
    return Overlaps(other) || AdjacentTo(other);
  }

  /// Intersection, or nullopt when disjoint.
  std::optional<Interval> Intersect(const Interval& other) const;

  /// Union of two mergeable intervals. Asserts Mergeable(other).
  Interval MergeWith(const Interval& other) const;

  /// Splits this interval at an interior point `t` (start < t < end) into
  /// [start, t) and [t, end). Asserts `t` is interior.
  std::pair<Interval, Interval> SplitAt(TimePoint t) const;

  /// Renders as "[s, e)" with "inf" for the unbounded endpoint.
  std::string ToString() const;

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    return a.start_ == b.start_ && a.end_ == b.end_;
  }
  friend constexpr bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
  /// Lexicographic (start, end) order; used for canonical sorting.
  friend constexpr bool operator<(const Interval& a, const Interval& b) {
    return a.start_ != b.start_ ? a.start_ < b.start_ : a.end_ < b.end_;
  }

 private:
  TimePoint start_;
  TimePoint end_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// Renders a time point, using "inf" for kTimeInfinity.
std::string TimePointToString(TimePoint t);

struct IntervalHash {
  std::size_t operator()(const Interval& iv) const {
    std::size_t h = std::hash<TimePoint>()(iv.start());
    h ^= std::hash<TimePoint>()(iv.end()) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// Fragments `iv` at the sorted cut points in `cuts` (only interior cuts
/// apply), producing consecutive sub-intervals whose union is `iv`. This is
/// the fragmentation primitive shared by both normalization algorithms
/// (Section 4.2): a fact with interval [s_i, e_i) is fragmented at every
/// distinct start/end point falling strictly inside it.
///
/// `cuts` must be sorted ascending; duplicates are tolerated. Binary-searches
/// the first interior cut, so the cost is O(log |cuts| + fragments) rather
/// than a scan of the whole cut vector.
std::vector<Interval> FragmentInterval(const Interval& iv,
                                       const std::vector<TimePoint>& cuts);

/// Appends the fragments of `iv` at the interior cuts in `cuts` to `*out`
/// without clearing it. Same contract as FragmentInterval; this is the
/// allocation-free form used by the normalizers' hot emission loops.
void AppendFragments(const Interval& iv, const std::vector<TimePoint>& cuts,
                     std::vector<Interval>* out);

/// Collects the distinct endpoints (starts and finite ends, including
/// kTimeInfinity sentinels filtered out) of `ivs`, sorted ascending.
/// Infinite right endpoints are not cut points, so they are omitted.
std::vector<TimePoint> DistinctFiniteEndpoints(const std::vector<Interval>& ivs);

}  // namespace tdx

#endif  // TDX_COMMON_INTERVAL_H_
