#include "src/common/symbol_table.h"

#include <cassert>

namespace tdx {

SymbolId SymbolTable::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(spellings_.size());
  spellings_.emplace_back(text);
  ids_.emplace(std::string_view(spellings_.back()), id);
  return id;
}

bool SymbolTable::Lookup(std::string_view text, SymbolId* out) const {
  auto it = ids_.find(text);
  if (it == ids_.end()) return false;
  *out = it->second;
  return true;
}

std::string_view SymbolTable::Spelling(SymbolId id) const {
  assert(id < spellings_.size());
  return spellings_[id];
}

}  // namespace tdx
