// Resource governance for the chase engines, and a fault-injection registry
// for testing their abort paths.
//
// The paper's engines — the per-snapshot chase (Proposition 4), norm(Ic,
// Phi+) with its Theta(n^2) worst case (Theorem 13), and the c-chase
// (Definition 16) — all terminate on well-formed input, but "terminates" is
// not a budget: adversarial normalization instances, egd fixpoint churn, and
// degenerate mappings can consume unbounded time and memory before they get
// there. Production callers need every engine to degrade into a structured,
// reportable outcome instead of an OOM or a hang.
//
// Two pieces live here:
//
//  * ChaseLimits + ResourceGuard — a budget (max tgd fires, egd steps, fresh
//    nulls, facts, normalization fragments, wall-clock deadline) and the
//    mutable guard that engines charge against. A guard "trips" on the first
//    exceeded dimension and stays tripped; engines poll `ok()` at their loop
//    heads and unwind, surfacing ChaseResultKind::kAborted with partial
//    stats and the exhausted dimension. With no limits set, every charge is
//    a single integer compare against the unlimited sentinel (measured <2%
//    on the c-chase hot path, see bench_guard_overhead).
//
//  * TDX_FAULT_POINT / FaultRegistry — named sites in engine code that tests
//    can arm to force budget exhaustion, simulated allocation failure, or a
//    mid-phase abort. Unarmed cost is one relaxed atomic load; compiling
//    with TDX_DISABLE_FAULT_POINTS removes the sites entirely.
//
// Chase *failure* (no solution exists) remains a first-class outcome and is
// unrelated to this file; see the taxonomy note in common/status.h and
// docs/INTERNALS.md ("Resource governance & failure taxonomy").

#ifndef TDX_COMMON_RESOURCE_H_
#define TDX_COMMON_RESOURCE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace tdx {

/// Sentinel meaning "no limit" for the count-valued budget dimensions.
inline constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

/// Budget for one engine run. Default-constructed limits are all unlimited,
/// so `ChaseLimits{}` preserves the historical open-loop behavior.
struct ChaseLimits {
  std::size_t max_tgd_fires = kUnlimited;  ///< tgd firings (st + target)
  std::size_t max_egd_steps = kUnlimited;  ///< successful egd merge steps
  std::size_t max_fresh_nulls = kUnlimited;  ///< labeled/annotated nulls minted
  std::size_t max_facts = kUnlimited;  ///< facts inserted into the target
  /// Fragments emitted by a normalizer run (per normalization pass).
  std::size_t max_normalize_fragments = kUnlimited;
  /// Wall-clock deadline for the whole engine run; nullopt = none.
  std::optional<std::chrono::milliseconds> deadline;

  /// True iff every dimension is unlimited (the guard fast path).
  bool Unlimited() const {
    return max_tgd_fires == kUnlimited && max_egd_steps == kUnlimited &&
           max_fresh_nulls == kUnlimited && max_facts == kUnlimited &&
           max_normalize_fragments == kUnlimited && !deadline.has_value();
  }
};

/// The budget dimension that tripped a guard.
enum class ResourceDimension {
  kNone = 0,
  kTgdFires,
  kEgdSteps,
  kFreshNulls,
  kFacts,
  kNormalizeFragments,
  kWallClock,
  kInjectedFault,  ///< tripped by an armed TDX_FAULT_POINT site
};

/// Stable human-readable token for a dimension ("tgd-fires", ...).
std::string_view ResourceDimensionToString(ResourceDimension dim);

/// Everything a guard has charged so far, plus monotonic elapsed wall time.
/// A checkpoint stores the ledger of the interrupted run; seeding a new
/// guard with it makes the resumed run charge against the *remaining*
/// allowance instead of a reset budget.
///
/// Caveat: under fully-unlimited limits the guard's fast path skips the
/// count bookkeeping entirely, so the count fields stay zero — ChaseStats
/// is the record of work done, the ledger is the record of budget spent.
struct ResourceLedger {
  std::size_t tgd_fires = 0;
  std::size_t egd_steps = 0;
  std::size_t fresh_nulls = 0;
  std::size_t facts = 0;
  std::size_t fragments = 0;
  /// Wall time consumed, measured on std::chrono::steady_clock so system
  /// clock jumps can neither spuriously trip nor indefinitely extend a
  /// deadline.
  std::chrono::milliseconds elapsed{0};
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Process-wide registry of armed fault points. Engines declare sites with
/// TDX_FAULT_POINT("engine/site") or ResourceGuard::PokeFault; tests arm a
/// site (optionally after skipping the first `skip_count` hits) and the site
/// then yields the armed Status. The registry is for tests: arming is
/// mutex-protected, but the unarmed fast path is a single relaxed atomic
/// load so production code pays nothing measurable.
class FaultRegistry {
 public:
  /// Arms `site` to fire `status` once, after `skip_count` prior hits pass
  /// through. Re-arming a site replaces its previous spec.
  static void Arm(std::string_view site, Status status,
                  std::size_t skip_count = 0);
  /// Disarms one site (no-op if not armed).
  static void Disarm(std::string_view site);
  /// Disarms everything; call from test teardown.
  static void DisarmAll();
  /// Number of times `site` was hit (armed or not) since the last DisarmAll.
  /// Counted only while at least one site is armed, so production runs do
  /// not pay for bookkeeping.
  static std::size_t HitCount(std::string_view site);

  /// True iff any site is armed. Single relaxed atomic load.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Slow path: consults the registry for `site`; returns the armed Status
  /// (consuming the arm) or OK. Callers must check AnyArmed() first.
  static Status Fire(std::string_view site);

 private:
  static std::atomic<std::size_t> armed_count_;
};

/// Every named fault site compiled into the engines, for harnesses that
/// sweep the whole surface (tests/chaos_resume_test.cc and the CI
/// chaos-resume job). Keep in sync when adding a TDX_FAULT_POINT,
/// PokeFault, or FaultRegistry::Fire call site.
inline constexpr std::string_view kRegisteredFaultSites[] = {
    "parser/statement",
    "chase/tgd-phase",
    "chase/egd-fixpoint",
    "cchase/normalize-source",
    "cchase/tgd-phase",
    "cchase/normalize-target",
    "cchase/egd-fixpoint",
    "normalize/naive",
    "normalize/algorithm1",
    "normalize/incremental",
    "naive-eval/normalize",
    "thread-pool/dispatch",
    "abstract-chase/merge",
};

/// RAII arm/disarm for tests: the fault is disarmed when the scope exits.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, Status status, std::size_t skip_count = 0)
      : site_(site) {
    FaultRegistry::Arm(site_, std::move(status), skip_count);
  }
  ~ScopedFault() { FaultRegistry::Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

#ifdef TDX_DISABLE_FAULT_POINTS
/// Fault points compiled out: zero cost, zero code.
#define TDX_FAULT_POINT(site) ((void)0)
#else
/// Declares a named fault site in a function returning Status or Result<T>.
/// When a test armed the site, the armed Status is returned from the
/// enclosing function; otherwise this is one relaxed atomic load.
#define TDX_FAULT_POINT(site)                                       \
  do {                                                              \
    if (::tdx::FaultRegistry::AnyArmed()) {                         \
      ::tdx::Status _tdx_fault = ::tdx::FaultRegistry::Fire(site);  \
      if (!_tdx_fault.ok()) return _tdx_fault;                      \
    }                                                               \
  } while (false)
#endif

// ---------------------------------------------------------------------------
// ResourceGuard
// ---------------------------------------------------------------------------

/// Mutable budget accountant threaded through one engine run. Not
/// thread-safe (each engine run owns its guard). All charge methods return
/// true while within budget; the first violation trips the guard, records
/// the dimension, and every subsequent charge returns false, so engines can
/// poll cheaply at loop heads and unwind without extra state.
class ResourceGuard {
 public:
  /// Unlimited guard; every charge succeeds.
  ResourceGuard() : ResourceGuard(ChaseLimits{}) {}

  explicit ResourceGuard(const ChaseLimits& limits)
      : ResourceGuard(limits, ResourceLedger{}) {}

  /// Resume constructor: the guard starts with `consumed` already charged,
  /// so only the remaining allowance (counts and wall time) is available.
  /// If the prior run already spent the whole deadline, the guard starts
  /// tripped and the first poll aborts the engine.
  /// Publishes the final consumed ledger to the process metrics
  /// (guard.consumed.*); defined out of line. Guards are never copied —
  /// every engine holds exactly one per run — so the ledger is published
  /// exactly once per run.
  ~ResourceGuard();

  ResourceGuard(const ChaseLimits& limits, const ResourceLedger& consumed)
      : limits_(limits),
        unlimited_(limits.Unlimited()),
        start_(std::chrono::steady_clock::now()),
        prior_elapsed_(consumed.elapsed),
        seed_(consumed),
        tgd_fires_(consumed.tgd_fires),
        egd_steps_(consumed.egd_steps),
        fresh_nulls_(consumed.fresh_nulls),
        facts_(consumed.facts),
        fragments_(consumed.fragments) {
    if (limits_.deadline.has_value()) {
      if (prior_elapsed_ >= *limits_.deadline) {
        Trip(ResourceDimension::kWallClock,
             "wall-clock deadline of " +
                 std::to_string(limits_.deadline->count()) +
                 "ms already consumed before resume");
      } else {
        deadline_ = start_ + (*limits_.deadline - prior_elapsed_);
      }
    }
  }

  const ChaseLimits& limits() const { return limits_; }

  /// Snapshot of everything charged so far, for checkpointing. Elapsed time
  /// is prior consumption plus this guard's lifetime on the steady clock;
  /// successive snapshots are monotonically non-decreasing (asserted —
  /// steady_clock is monotonic by contract).
  ResourceLedger Consumed() const {
    const auto now = std::chrono::steady_clock::now();
    assert(now >= start_ && "steady_clock went backwards");
    ResourceLedger ledger;
    ledger.tgd_fires = tgd_fires_;
    ledger.egd_steps = egd_steps_;
    ledger.fresh_nulls = fresh_nulls_;
    ledger.facts = facts_;
    ledger.fragments = fragments_;
    ledger.elapsed =
        prior_elapsed_ + std::chrono::duration_cast<std::chrono::milliseconds>(
                             now - start_);
    return ledger;
  }

  /// True while no dimension has been exceeded and no fault injected.
  bool ok() const { return dimension_ == ResourceDimension::kNone; }
  bool tripped() const { return !ok(); }
  ResourceDimension dimension() const { return dimension_; }

  /// The abort as a Status: kResourceExhausted for count budgets and
  /// injected faults, kDeadlineExceeded for the wall clock. OK if not
  /// tripped.
  Status ToStatus() const;

  /// Human-readable abort reason ("tgd fire budget of 10 exhausted", ...).
  /// Empty if not tripped.
  const std::string& reason() const { return reason_; }

  // ---- charging ----------------------------------------------------------
  // Engines call these as the corresponding work happens; counts mirror
  // ChaseStats. A tripped guard rejects every further charge.

  bool ChargeTgdFire() {
    return Charge(&tgd_fires_, limits_.max_tgd_fires,
                  ResourceDimension::kTgdFires);
  }
  bool ChargeEgdSteps(std::size_t n) {
    return Charge(&egd_steps_, limits_.max_egd_steps,
                  ResourceDimension::kEgdSteps, n);
  }
  bool ChargeFreshNull() {
    return Charge(&fresh_nulls_, limits_.max_fresh_nulls,
                  ResourceDimension::kFreshNulls);
  }
  bool ChargeFact() {
    return Charge(&facts_, limits_.max_facts, ResourceDimension::kFacts);
  }
  bool ChargeFragment() {
    return Charge(&fragments_, limits_.max_normalize_fragments,
                  ResourceDimension::kNormalizeFragments);
  }

  /// Polls the wall-clock deadline. The clock is read only once per
  /// `kDeadlineStride` calls (reading it dominates the cost otherwise);
  /// engines call this at loop heads, so the slack is a few iterations.
  bool CheckDeadline() {
    if (!deadline_.has_value()) return ok();
    if (tripped()) return false;
    if (deadline_poll_++ % kDeadlineStride != 0) return true;
    if (std::chrono::steady_clock::now() >= *deadline_) {
      Trip(ResourceDimension::kWallClock,
           "wall-clock deadline of " +
               std::to_string(limits_.deadline->count()) + "ms exceeded");
      return false;
    }
    return true;
  }

  /// Fault-injection variant for engine interiors that cannot return a
  /// Status directly: when the named site is armed, the guard trips with
  /// the armed fault and the engine's normal abort unwinding takes over.
  /// Unarmed cost: one relaxed atomic load.
  bool PokeFault(std::string_view site) {
#ifndef TDX_DISABLE_FAULT_POINTS
    if (FaultRegistry::AnyArmed()) {
      Status fault = FaultRegistry::Fire(site);
      if (!fault.ok()) {
        Trip(ResourceDimension::kInjectedFault, fault.ToString());
        return false;
      }
    }
#else
    (void)site;
#endif
    return ok();
  }

  /// Normalizer passes are budgeted individually (each pass re-fragments
  /// the instance); callers reset the fragment counter between passes.
  void ResetFragmentCount() { fragments_ = 0; }

 private:
  static constexpr std::size_t kDeadlineStride = 256;

  bool Charge(std::size_t* counter, std::size_t limit, ResourceDimension dim,
              std::size_t n = 1) {
    if (tripped()) return false;
    if (unlimited_) return true;
    *counter += n;
    if (*counter > limit) {
      Trip(dim, std::string(ResourceDimensionToString(dim)) + " budget of " +
                    std::to_string(limit) + " exhausted");
      return false;
    }
    return true;
  }

  /// Out of line: records the trip in the process metrics (guard.trips and
  /// guard.trips.<dimension>) besides latching the abort state.
  void Trip(ResourceDimension dim, std::string reason);

  ChaseLimits limits_;
  bool unlimited_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::milliseconds prior_elapsed_{0};
  ResourceLedger seed_;  ///< resume-time consumption, excluded from metrics
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::size_t deadline_poll_ = 0;

  std::size_t tgd_fires_ = 0;
  std::size_t egd_steps_ = 0;
  std::size_t fresh_nulls_ = 0;
  std::size_t facts_ = 0;
  std::size_t fragments_ = 0;

  ResourceDimension dimension_ = ResourceDimension::kNone;
  std::string reason_;
};

}  // namespace tdx

#endif  // TDX_COMMON_RESOURCE_H_
