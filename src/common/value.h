// Values: constants, labeled nulls, interval-annotated nulls, and intervals.
//
// The paper's data model needs four kinds of values:
//
//  * Constants (Section 2) — ordinary data values such as "Ada" or "18k".
//  * Labeled nulls (Section 2) — the unknowns of classical data exchange;
//    they appear in snapshots of abstract target instances.
//  * Interval-annotated nulls (Section 4.1) — `N^[s,e)`, a labeled null N
//    annotated with the time interval of the concrete fact it occurs in. An
//    annotated null is a *compact representation of a sequence* of distinct
//    labeled nulls <N_s, ..., N_{e-1}>, one per snapshot. Projection on a
//    time point, `proj_l(N^[s,e)) = N_l`, selects one element.
//  * Intervals — the paper treats the temporal attribute T of a concrete
//    relation R+ as an ordinary attribute whose domain is time intervals
//    ("time intervals behave as constants", Section 4.2). Making Interval a
//    Value kind lets the one homomorphism engine handle concrete schemas,
//    temporal variables t, and interval constants uniformly.
//
// A Value is a small trivially copyable handle; identity of constants and
// null spellings lives in a Universe, which also implements null projection
// (memoized so proj_l(N^[s,e)) is deterministic — crucial for the semantics
// function [[.]] in temporal/snapshot.h).
//
// Identity of an annotated null is the pair (null id, annotation interval).
// Fragmentation (Section 4.2) re-annotates a null with a sub-interval while
// keeping the null id, so the fragments still project onto the *same*
// underlying sequence <N_s, ...> — exactly the paper's convention that
// fragmenting a fact containing N^[s1,e1) yields facts containing
// N^[s1,s2) and N^[s2,e1).

#ifndef TDX_COMMON_VALUE_H_
#define TDX_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/interval.h"
#include "src/common/symbol_table.h"

namespace tdx {

/// Dense id of a labeled null within a Universe.
using NullId = std::uint64_t;

enum class ValueKind : std::uint8_t {
  kConstant = 0,       ///< interned constant
  kNull = 1,           ///< labeled null (abstract view)
  kAnnotatedNull = 2,  ///< interval-annotated null N^[s,e) (concrete view)
  kInterval = 3,       ///< a time interval used as a value (attribute T)
};

/// A tagged, trivially copyable value handle. See file comment.
class Value {
 public:
  /// Default: the constant with symbol id 0 (rarely meaningful; present so
  /// Value is usable in containers). Prefer the factories on Universe.
  Value() : kind_(ValueKind::kConstant), id_(0), iv_(0, 1) {}

  static Value Constant(SymbolId sym) {
    return Value(ValueKind::kConstant, sym, Interval(0, 1));
  }
  static Value Null(NullId id) {
    return Value(ValueKind::kNull, id, Interval(0, 1));
  }
  static Value AnnotatedNull(NullId id, const Interval& annotation) {
    return Value(ValueKind::kAnnotatedNull, id, annotation);
  }
  static Value OfInterval(const Interval& iv) {
    return Value(ValueKind::kInterval, 0, iv);
  }

  ValueKind kind() const { return kind_; }
  bool is_constant() const { return kind_ == ValueKind::kConstant; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_annotated_null() const { return kind_ == ValueKind::kAnnotatedNull; }
  bool is_interval() const { return kind_ == ValueKind::kInterval; }
  /// Any kind of unknown (labeled or annotated).
  bool is_any_null() const { return is_null() || is_annotated_null(); }

  /// Symbol id; valid only for constants.
  SymbolId symbol() const {
    assert(is_constant());
    return static_cast<SymbolId>(id_);
  }
  /// Null id; valid for labeled and annotated nulls.
  NullId null_id() const {
    assert(is_any_null());
    return id_;
  }
  /// Interval payload; valid for annotated nulls (the annotation) and
  /// interval values.
  const Interval& interval() const {
    assert(is_annotated_null() || is_interval());
    return iv_;
  }

  /// Same null id, different annotation. Valid only for annotated nulls.
  Value Reannotated(const Interval& annotation) const {
    assert(is_annotated_null());
    return AnnotatedNull(id_, annotation);
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case ValueKind::kConstant:
      case ValueKind::kNull:
        return a.id_ == b.id_;
      case ValueKind::kAnnotatedNull:
        return a.id_ == b.id_ && a.iv_ == b.iv_;
      case ValueKind::kInterval:
        return a.iv_ == b.iv_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Canonical total order by (kind, id, interval); used for deterministic
  /// iteration (the chase fires triggers in canonical order).
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    if (a.id_ != b.id_) return a.id_ < b.id_;
    return a.iv_ < b.iv_;
  }

  std::size_t Hash() const {
    std::size_t h = std::hash<std::uint8_t>()(static_cast<std::uint8_t>(kind_));
    auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    switch (kind_) {
      case ValueKind::kConstant:
      case ValueKind::kNull:
        mix(std::hash<std::uint64_t>()(id_));
        break;
      case ValueKind::kAnnotatedNull:
        mix(std::hash<std::uint64_t>()(id_));
        mix(IntervalHash()(iv_));
        break;
      case ValueKind::kInterval:
        mix(IntervalHash()(iv_));
        break;
    }
    return h;
  }

 private:
  Value(ValueKind kind, std::uint64_t id, const Interval& iv)
      : kind_(kind), id_(id), iv_(iv) {}

  ValueKind kind_;
  std::uint64_t id_;
  Interval iv_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Owner of value identity: the constant symbol table, the labeled-null
/// namespace, and the memoized projection of annotated nulls onto snapshots.
///
/// All instances, dependencies, and queries that interact must share one
/// Universe (they are compared by interned ids).
class Universe {
 public:
  Universe() = default;
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;
  Universe(Universe&&) = default;
  Universe& operator=(Universe&&) = default;

  /// Interns a constant.
  Value Constant(std::string_view spelling) {
    return Value::Constant(symbols_.Intern(spelling));
  }

  /// Fresh labeled null with an auto-generated display name "N<k>".
  Value FreshNull() { return FreshNull(""); }

  /// Fresh labeled null; if `name` is empty an "N<k>" name is generated.
  Value FreshNull(std::string_view name);

  /// Fresh interval-annotated null with the given annotation.
  Value FreshAnnotatedNull(const Interval& annotation) {
    return FreshAnnotatedNull("", annotation);
  }
  Value FreshAnnotatedNull(std::string_view name, const Interval& annotation);

  /// proj_l(N^[s,e)) = N_l: the labeled null at snapshot l of the sequence
  /// represented by an annotated null (Section 4.1). Memoized: repeated
  /// calls with the same (null id, l) return the same labeled null, and the
  /// annotation interval does not participate (fragments of one null project
  /// consistently). Precondition: annotation contains l.
  Value ProjectNull(const Value& annotated, TimePoint l);

  /// Human-readable rendering: constants by spelling, nulls by display name,
  /// annotated nulls as "N^[s, e)", intervals as "[s, e)".
  std::string Render(const Value& v) const;

  /// Number of labeled nulls allocated so far.
  NullId null_count() const { return next_null_; }

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Display name of a null id (for rendering and tests).
  std::string_view NullName(NullId id) const;

  /// Restores the labeled-null namespace to a checkpointed state: the next
  /// fresh null gets id `next_null`, and ids below it render with the given
  /// names. Also clears the projection memo (projection ids minted after
  /// the checkpoint would collide with nulls the resumed chase re-mints).
  /// Only the chase engines call this, on resume; they own the null
  /// namespace for the duration of a run.
  void RestoreNullState(NullId next_null, std::vector<std::string> names);

 private:
  SymbolTable symbols_;
  NullId next_null_ = 0;
  std::vector<std::string> null_names_;

  struct PairHash {
    std::size_t operator()(const std::pair<NullId, TimePoint>& p) const {
      std::size_t h = std::hash<NullId>()(p.first);
      h ^= std::hash<TimePoint>()(p.second) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return h;
    }
  };
  std::unordered_map<std::pair<NullId, TimePoint>, NullId, PairHash>
      projections_;
};

}  // namespace tdx

#endif  // TDX_COMMON_VALUE_H_
