#include "src/common/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parser/serialize.h"

namespace tdx {

std::uint64_t FingerprintText(std::string_view text) {
  // FNV-1a, 64 bit.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void CaptureUniverseNulls(const Universe& universe,
                          ChaseCheckpoint* checkpoint) {
  checkpoint->next_null = universe.null_count();
  checkpoint->null_names.clear();
  checkpoint->null_names.reserve(checkpoint->next_null);
  for (NullId id = 0; id < checkpoint->next_null; ++id) {
    checkpoint->null_names.emplace_back(universe.NullName(id));
  }
}

namespace {

struct CheckpointMetrics {
  obs::Counter offers{"checkpoint.offers"};
  obs::Counter throttled{"checkpoint.throttled"};
  obs::Counter writes{"checkpoint.writes"};
  obs::Counter write_errors{"checkpoint.write_errors"};
  obs::Counter loads{"checkpoint.loads"};
  obs::Histogram save_us{"checkpoint.save_us"};
};

CheckpointMetrics& GetCheckpointMetrics() {
  static auto* metrics = new CheckpointMetrics();
  return *metrics;
}

}  // namespace

bool Checkpointer::AtSafePoint(bool phase_boundary, const BuildFn& build) {
  CheckpointMetrics& metrics = GetCheckpointMetrics();
  metrics.offers.Inc();
  ++safe_points_;
  if (!phase_boundary) {
    ++round_points_;
    if (round_points_ % every_rounds_ != 0) return false;
  }
  const auto start = std::chrono::steady_clock::now();
  if (max_overhead_ > 0 && writes_ > 0) {
    // Keep (already spent) + (estimated next persist, proxied by the last
    // one) under the overhead budget of the run so far. The guarantee is
    // retrospective — everything spent fits the budget up to one stale
    // estimate's worth of overshoot.
    const std::chrono::duration<double, std::nano> budget =
        (start - created_) * max_overhead_;
    if (std::chrono::duration<double, std::nano>(total_cost_ + last_cost_) >
        budget) {
      metrics.throttled.Inc();
      return false;
    }
  }
  TDX_TRACE_SPAN("checkpoint.save");
  ChaseCheckpoint checkpoint = build();
  checkpoint.program_fingerprint = fingerprint_;
  if (!path_.empty()) {
    Status written =
        SaveChaseCheckpoint(checkpoint, *schema_, *universe_, path_);
    if (!written.ok()) {
      metrics.write_errors.Inc();
      if (last_error_.ok()) last_error_ = std::move(written);
      return false;
    }
  }
  if (keep_latest_) latest_ = std::move(checkpoint);
  ++writes_;
  metrics.writes.Inc();
  last_cost_ = std::chrono::steady_clock::now() - start;
  metrics.save_us.Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(last_cost_)
          .count()));
  total_cost_ += last_cost_;
  return true;
}

Status SaveChaseCheckpoint(const ChaseCheckpoint& checkpoint,
                           const Schema& schema, const Universe& universe,
                           const std::string& path) {
  TDX_ASSIGN_OR_RETURN(std::string text,
                       SerializeCheckpoint(checkpoint, schema, universe));
  // Atomic replace: a kill mid-write leaves either the previous checkpoint
  // or the new one, never a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open checkpoint temp file: " + tmp);
    }
    out << text;
    out.flush();
    if (!out) {
      return Status::Internal("short write to checkpoint temp file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " + path);
  }
  return Status::OK();
}

Result<ChaseCheckpoint> LoadChaseCheckpoint(const std::string& path,
                                            std::string_view program_text,
                                            const Schema* schema,
                                            Universe* universe) {
  TDX_TRACE_SPAN("checkpoint.load");
  GetCheckpointMetrics().loads.Inc();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  TDX_ASSIGN_OR_RETURN(ChaseCheckpoint checkpoint,
                       ParseCheckpoint(buffer.str(), schema, universe));
  if (checkpoint.program_fingerprint != FingerprintText(program_text)) {
    return Status::InvalidArgument(
        "checkpoint was written for a different program (fingerprint "
        "mismatch)");
  }
  return checkpoint;
}

}  // namespace tdx
