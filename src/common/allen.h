// Allen's interval algebra: the thirteen basic relations between two
// intervals (Allen, CACM 1983).
//
// The paper's machinery needs only overlap/adjacency/containment, but
// temporal-database tooling built on tdx regularly wants the full
// vocabulary (SQL:2011's period predicates are unions of Allen relations).
// Classify() maps any pair of half-open intervals to exactly one relation;
// the half-open representation makes "meets" coincide with the paper's
// adjacency (a.end == b.start).
//
// Naming follows Allen, with the six inverse relations spelled out:
//
//   a BEFORE b        a ends strictly before b starts (gap in between)
//   a MEETS b         a.end == b.start
//   a OVERLAPS b      proper overlap, a starts first, neither contains
//   a STARTS b        same start, a ends first
//   a DURING b        b properly contains a on both sides
//   a FINISHES b      same end, a starts later
//   a EQUALS b
//   ... and AFTER / MET_BY / OVERLAPPED_BY / STARTED_BY / CONTAINS /
//   FINISHED_BY as the inverses.

#ifndef TDX_COMMON_ALLEN_H_
#define TDX_COMMON_ALLEN_H_

#include <string_view>

#include "src/common/interval.h"

namespace tdx {

enum class AllenRelation {
  kBefore,
  kMeets,
  kOverlaps,
  kStarts,
  kDuring,
  kFinishes,
  kEquals,
  kFinishedBy,
  kContains,
  kStartedBy,
  kOverlappedBy,
  kMetBy,
  kAfter,
};

/// The unique Allen relation holding between `a` and `b`. Total: every pair
/// of (non-empty, half-open) intervals falls into exactly one case;
/// unbounded endpoints compare as +infinity.
AllenRelation Classify(const Interval& a, const Interval& b);

/// The inverse relation: Classify(b, a) == Inverse(Classify(a, b)).
AllenRelation Inverse(AllenRelation rel);

/// Stable lowercase token ("before", "met_by", ...).
std::string_view AllenRelationName(AllenRelation rel);

/// SQL:2011-style composite predicates, expressed over Allen relations.
/// a OVERLAPS b in the SQL sense = any relation sharing >= 1 time point.
bool PeriodsOverlap(const Interval& a, const Interval& b);
/// a CONTAINS b in the SQL sense = every point of b is in a.
bool PeriodContains(const Interval& a, const Interval& b);
/// a PRECEDES b = a entirely before b (BEFORE or MEETS).
bool PeriodPrecedes(const Interval& a, const Interval& b);
/// a IMMEDIATELY PRECEDES b = MEETS.
bool PeriodImmediatelyPrecedes(const Interval& a, const Interval& b);

}  // namespace tdx

#endif  // TDX_COMMON_ALLEN_H_
