#include "src/common/value.h"

namespace tdx {

Value Universe::FreshNull(std::string_view name) {
  const NullId id = next_null_++;
  if (name.empty()) {
    null_names_.push_back("N" + std::to_string(id));
  } else {
    null_names_.emplace_back(name);
  }
  return Value::Null(id);
}

Value Universe::FreshAnnotatedNull(std::string_view name,
                                   const Interval& annotation) {
  const Value base = FreshNull(name);
  return Value::AnnotatedNull(base.null_id(), annotation);
}

Value Universe::ProjectNull(const Value& annotated, TimePoint l) {
  assert(annotated.is_annotated_null());
  assert(annotated.interval().Contains(l));
  const std::pair<NullId, TimePoint> key{annotated.null_id(), l};
  auto it = projections_.find(key);
  if (it != projections_.end()) return Value::Null(it->second);
  // The projected null gets a derived display name "N_l" so rendered
  // snapshots read like the paper's Figure 3.
  std::string name(NullName(annotated.null_id()));
  name += "_";
  name += TimePointToString(l);
  const Value fresh = FreshNull(name);
  projections_.emplace(key, fresh.null_id());
  return fresh;
}

void Universe::RestoreNullState(NullId next_null,
                                std::vector<std::string> names) {
  assert(names.size() == next_null);
  next_null_ = next_null;
  null_names_ = std::move(names);
  projections_.clear();
}

std::string_view Universe::NullName(NullId id) const {
  assert(id < null_names_.size());
  return null_names_[id];
}

std::string Universe::Render(const Value& v) const {
  switch (v.kind()) {
    case ValueKind::kConstant:
      return std::string(symbols_.Spelling(v.symbol()));
    case ValueKind::kNull:
      return std::string(NullName(v.null_id()));
    case ValueKind::kAnnotatedNull: {
      std::string out(NullName(v.null_id()));
      out += "^";
      out += v.interval().ToString();
      return out;
    }
    case ValueKind::kInterval:
      return v.interval().ToString();
  }
  return "<invalid>";
}

}  // namespace tdx
