#include "src/common/resource.h"

#include <mutex>
#include <unordered_map>

#include "src/obs/metrics.h"

namespace tdx {

std::string_view ResourceDimensionToString(ResourceDimension dim) {
  switch (dim) {
    case ResourceDimension::kNone:
      return "none";
    case ResourceDimension::kTgdFires:
      return "tgd-fires";
    case ResourceDimension::kEgdSteps:
      return "egd-steps";
    case ResourceDimension::kFreshNulls:
      return "fresh-nulls";
    case ResourceDimension::kFacts:
      return "facts";
    case ResourceDimension::kNormalizeFragments:
      return "normalize-fragments";
    case ResourceDimension::kWallClock:
      return "wall-clock";
    case ResourceDimension::kInjectedFault:
      return "injected-fault";
  }
  return "?";
}

namespace {

/// Trip counters, one per dimension plus a total. Indexed by the enum so a
/// trip costs two uncontended adds on an already-cold path.
struct TripMetrics {
  obs::Counter total{"guard.trips"};
  obs::Counter by_dim[8] = {
      obs::Counter("guard.trips.none"),
      obs::Counter("guard.trips.tgd_fires"),
      obs::Counter("guard.trips.egd_steps"),
      obs::Counter("guard.trips.fresh_nulls"),
      obs::Counter("guard.trips.facts"),
      obs::Counter("guard.trips.normalize_fragments"),
      obs::Counter("guard.trips.wall_clock"),
      obs::Counter("guard.trips.injected_fault"),
  };
};

TripMetrics& GetTripMetrics() {
  static auto* metrics = new TripMetrics();
  return *metrics;
}

struct ConsumedMetrics {
  obs::Counter tgd_fires{"guard.consumed.tgd_fires"};
  obs::Counter egd_steps{"guard.consumed.egd_steps"};
  obs::Counter fresh_nulls{"guard.consumed.fresh_nulls"};
  obs::Counter facts{"guard.consumed.facts"};
  obs::Counter fragments{"guard.consumed.fragments"};
};

ConsumedMetrics& GetConsumedMetrics() {
  static auto* metrics = new ConsumedMetrics();
  return *metrics;
}

}  // namespace

void ResourceGuard::Trip(ResourceDimension dim, std::string reason) {
  dimension_ = dim;
  reason_ = std::move(reason);
  TripMetrics& metrics = GetTripMetrics();
  metrics.total.Inc();
  const auto index = static_cast<std::size_t>(dim);
  if (index < 8) metrics.by_dim[index].Inc();
}

ResourceGuard::~ResourceGuard() {
  // Publishes this guard's own consumption — the seed a resumed guard
  // started from was already published by the interrupted run's guard. The
  // unlimited fast path skips the counters entirely, so an unlimited guard
  // legitimately publishes zeros.
  ConsumedMetrics& metrics = GetConsumedMetrics();
  if (tgd_fires_ > seed_.tgd_fires) {
    metrics.tgd_fires.Inc(tgd_fires_ - seed_.tgd_fires);
  }
  if (egd_steps_ > seed_.egd_steps) {
    metrics.egd_steps.Inc(egd_steps_ - seed_.egd_steps);
  }
  if (fresh_nulls_ > seed_.fresh_nulls) {
    metrics.fresh_nulls.Inc(fresh_nulls_ - seed_.fresh_nulls);
  }
  if (facts_ > seed_.facts) metrics.facts.Inc(facts_ - seed_.facts);
  // Fragments reset per normalizer pass (ResetFragmentCount), so the final
  // value is the last pass's count — published as-is, a lower bound.
  if (fragments_ > seed_.fragments) {
    metrics.fragments.Inc(fragments_ - seed_.fragments);
  }
}

Status ResourceGuard::ToStatus() const {
  switch (dimension_) {
    case ResourceDimension::kNone:
      return Status::OK();
    case ResourceDimension::kWallClock:
      return Status::DeadlineExceeded(reason_);
    default:
      return Status::ResourceExhausted(reason_);
  }
}

// ---------------------------------------------------------------------------
// FaultRegistry
// ---------------------------------------------------------------------------

namespace {

struct FaultSpec {
  Status status;
  std::size_t skip_count = 0;  ///< hits to let pass before firing
  bool armed = false;          ///< false once fired or disarmed
  std::size_t hits = 0;        ///< total hits, armed or spent
};

/// Per-site trip counter ("fault.trip.<site>"), registered lazily the first
/// time a site fires. Fires are rare and already hold the registry mutex, so
/// the name build + metric registration is off every hot path.
std::uint32_t FaultTripMetricId(std::string_view site) {
  return obs::MetricsRegistry::Instance().Register(
      "fault.trip." + std::string(site), obs::MetricKind::kCounter);
}

struct RegistryState {
  std::mutex mu;
  std::unordered_map<std::string, FaultSpec> sites;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked, never torn down
  return *state;
}

}  // namespace

std::atomic<std::size_t> FaultRegistry::armed_count_{0};

void FaultRegistry::Arm(std::string_view site, Status status,
                        std::size_t skip_count) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  FaultSpec& spec = state.sites[std::string(site)];
  if (!spec.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  spec.status = std::move(status);
  spec.skip_count = skip_count;
  spec.armed = true;
}

void FaultRegistry::Disarm(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end()) return;
  if (it->second.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  state.sites.erase(it);
}

void FaultRegistry::DisarmAll() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sites.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::size_t FaultRegistry::HitCount(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  return it == state.sites.end() ? 0 : it->second.hits;
}

Status FaultRegistry::Fire(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end()) return Status::OK();
  FaultSpec& spec = it->second;
  ++spec.hits;
  if (!spec.armed) return Status::OK();
  if (spec.skip_count > 0) {
    --spec.skip_count;
    return Status::OK();
  }
  spec.armed = false;  // fire once
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  static obs::Counter fault_trips("fault.trips");
  fault_trips.Inc();
  obs::MetricsRegistry::Instance().Add(FaultTripMetricId(site), 1);
  return spec.status;
}

}  // namespace tdx
