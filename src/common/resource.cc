#include "src/common/resource.h"

#include <mutex>
#include <unordered_map>

namespace tdx {

std::string_view ResourceDimensionToString(ResourceDimension dim) {
  switch (dim) {
    case ResourceDimension::kNone:
      return "none";
    case ResourceDimension::kTgdFires:
      return "tgd-fires";
    case ResourceDimension::kEgdSteps:
      return "egd-steps";
    case ResourceDimension::kFreshNulls:
      return "fresh-nulls";
    case ResourceDimension::kFacts:
      return "facts";
    case ResourceDimension::kNormalizeFragments:
      return "normalize-fragments";
    case ResourceDimension::kWallClock:
      return "wall-clock";
    case ResourceDimension::kInjectedFault:
      return "injected-fault";
  }
  return "?";
}

Status ResourceGuard::ToStatus() const {
  switch (dimension_) {
    case ResourceDimension::kNone:
      return Status::OK();
    case ResourceDimension::kWallClock:
      return Status::DeadlineExceeded(reason_);
    default:
      return Status::ResourceExhausted(reason_);
  }
}

// ---------------------------------------------------------------------------
// FaultRegistry
// ---------------------------------------------------------------------------

namespace {

struct FaultSpec {
  Status status;
  std::size_t skip_count = 0;  ///< hits to let pass before firing
  bool armed = false;          ///< false once fired or disarmed
  std::size_t hits = 0;        ///< total hits, armed or spent
};

struct RegistryState {
  std::mutex mu;
  std::unordered_map<std::string, FaultSpec> sites;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked, never torn down
  return *state;
}

}  // namespace

std::atomic<std::size_t> FaultRegistry::armed_count_{0};

void FaultRegistry::Arm(std::string_view site, Status status,
                        std::size_t skip_count) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  FaultSpec& spec = state.sites[std::string(site)];
  if (!spec.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  spec.status = std::move(status);
  spec.skip_count = skip_count;
  spec.armed = true;
}

void FaultRegistry::Disarm(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end()) return;
  if (it->second.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  state.sites.erase(it);
}

void FaultRegistry::DisarmAll() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sites.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::size_t FaultRegistry::HitCount(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  return it == state.sites.end() ? 0 : it->second.hits;
}

Status FaultRegistry::Fire(std::string_view site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end()) return Status::OK();
  FaultSpec& spec = it->second;
  ++spec.hits;
  if (!spec.armed) return Status::OK();
  if (spec.skip_count > 0) {
    --spec.skip_count;
    return Status::OK();
  }
  spec.armed = false;  // fire once
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return spec.status;
}

}  // namespace tdx
