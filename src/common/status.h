// Status and Result<T>: lightweight error-handling primitives in the style
// used by production database codebases (Arrow, RocksDB, LevelDB).
//
// A Status carries an error code and a human-readable message. A Result<T>
// carries either a value or a Status. Both are cheap to move and are the
// uniform return convention for every fallible operation in tdx. Operations
// that cannot fail return their value directly.
//
// Note that *chase failure* (an egd equating two distinct constants, meaning
// no solution exists) is NOT a Status error: it is a first-class outcome of
// the chase (see relational/chase.h). Status errors are reserved for misuse
// of the API (malformed schemas, arity mismatches, parse errors, ...).
//
// Resource-governed runs add a third leg to that taxonomy: an engine that
// exhausts its ChaseLimits budget (common/resource.h) *aborts* — surfaced
// as ChaseResultKind::kAborted with partial stats when an outcome struct is
// in play, or as kResourceExhausted / kDeadlineExceeded when only a Status
// can be returned. The full Status-vs-outcome-vs-abort trichotomy is
// documented in docs/INTERNALS.md ("Resource governance & failure
// taxonomy").

#ifndef TDX_COMMON_STATUS_H_
#define TDX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tdx {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller passed something structurally wrong
  kNotFound,         ///< lookup of a name/id that does not exist
  kAlreadyExists,    ///< duplicate registration (relation, attribute, ...)
  kParseError,       ///< text-format parsing failed
  kInternal,         ///< invariant violation inside the library
  kResourceExhausted,  ///< a ChaseLimits count budget was exhausted
  kDeadlineExceeded,   ///< a ChaseLimits wall-clock deadline passed
};

/// Renders a StatusCode as a stable, human-readable token.
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a T or a Status explaining why no T could be produced.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from error: `return Status::InvalidArgument(...);`
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates an error Status out of the enclosing function.
#define TDX_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::tdx::Status _tdx_status = (expr);        \
    if (!_tdx_status.ok()) return _tdx_status; \
  } while (false)

/// Unwraps a Result<T> into `lhs`, propagating errors.
#define TDX_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto TDX_CONCAT_(_tdx_result_, __LINE__) = (expr);           \
  if (!TDX_CONCAT_(_tdx_result_, __LINE__).ok())               \
    return TDX_CONCAT_(_tdx_result_, __LINE__).status();       \
  lhs = std::move(TDX_CONCAT_(_tdx_result_, __LINE__)).value()

#define TDX_CONCAT_(a, b) TDX_CONCAT_IMPL_(a, b)
#define TDX_CONCAT_IMPL_(a, b) a##b

}  // namespace tdx

#endif  // TDX_COMMON_STATUS_H_
