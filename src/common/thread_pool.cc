#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/resource.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

namespace {

/// The thread-pool/dispatch fault site: when armed, the next dispatched
/// work item is silently dropped — a stand-in for a worker killed between
/// dequeue and execution. Callers that fan out through ParallelFor observe
/// an unfilled result slot and must turn it into a clean abort (see
/// temporal/abstract_chase.cc).
bool DispatchFaultDropsTask() {
#ifndef TDX_DISABLE_FAULT_POINTS
  if (FaultRegistry::AnyArmed()) {
    return !FaultRegistry::Fire("thread-pool/dispatch").ok();
  }
#endif
  return false;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

unsigned ThreadPool::HardwareJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  // One batch span and two bulk counter adds per call — never per task, so
  // trigger-collection fan-outs pay nothing per item.
  static obs::Counter batches_metric("thread_pool.batches");
  static obs::Counter tasks_metric("thread_pool.tasks");
  static obs::Gauge jobs_metric("thread_pool.jobs");
  batches_metric.Inc();
  tasks_metric.Inc(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (DispatchFaultDropsTask()) continue;
      fn(i);
    }
    return;
  }
  obs::TraceSpan span("thread_pool.parallel_for");
  span.SetArg("tasks", count);
  jobs_metric.Set(jobs);
  ThreadPool pool(std::min<std::size_t>(jobs, count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] {
      if (DispatchFaultDropsTask()) return;
      fn(i);
    });
  }
  pool.Wait();
}

}  // namespace tdx
