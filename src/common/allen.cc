#include "src/common/allen.h"

namespace tdx {

AllenRelation Classify(const Interval& a, const Interval& b) {
  const TimePoint as = a.start(), ae = a.end();
  const TimePoint bs = b.start(), be = b.end();

  if (ae < bs) return AllenRelation::kBefore;
  if (ae == bs) return AllenRelation::kMeets;
  if (be < as) return AllenRelation::kAfter;
  if (be == as) return AllenRelation::kMetBy;

  // The intervals share at least one point from here on.
  if (as == bs) {
    if (ae == be) return AllenRelation::kEquals;
    return ae < be ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (ae == be) {
    return as > bs ? AllenRelation::kFinishes : AllenRelation::kFinishedBy;
  }
  if (as < bs) {
    return ae > be ? AllenRelation::kContains : AllenRelation::kOverlaps;
  }
  // as > bs
  return ae < be ? AllenRelation::kDuring : AllenRelation::kOverlappedBy;
}

AllenRelation Inverse(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
  }
  return AllenRelation::kEquals;
}

std::string_view AllenRelationName(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kFinishedBy:
      return "finished_by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStartedBy:
      return "started_by";
    case AllenRelation::kOverlappedBy:
      return "overlapped_by";
    case AllenRelation::kMetBy:
      return "met_by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "?";
}

bool PeriodsOverlap(const Interval& a, const Interval& b) {
  return a.Overlaps(b);
}

bool PeriodContains(const Interval& a, const Interval& b) {
  return a.Contains(b);
}

bool PeriodPrecedes(const Interval& a, const Interval& b) {
  return a.end() <= b.start();
}

bool PeriodImmediatelyPrecedes(const Interval& a, const Interval& b) {
  return a.end() == b.start();
}

}  // namespace tdx
