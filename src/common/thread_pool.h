// A small fixed-size thread pool for fanning independent work items out
// across cores.
//
// The engine's data structures (Universe, Instance, ResourceGuard, the
// finders) are deliberately NOT thread-safe: parallel callers give every
// work item its own scratch state and merge results sequentially in a
// deterministic order afterwards (see temporal/abstract_chase.cc for the
// pattern). The pool itself therefore stays minimal: submit closures, wait
// for quiescence, join on destruction.

#ifndef TDX_COMMON_THREAD_POOL_H_
#define TDX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdx {

class ThreadPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit ThreadPool(unsigned threads);
  /// Waits for pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw: there is no channel to report
  /// an exception, so failures travel through captured result slots.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. The pool is
  /// reusable afterwards.
  void Wait();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// max(1, std::thread::hardware_concurrency()) — the default for a
  /// "--jobs=0 means auto" flag.
  static unsigned HardwareJobs();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // signals workers: task or shutdown
  std::condition_variable all_done_;     // signals Wait(): in_flight hit 0
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..count-1), spreading the calls over up to `jobs` pool workers.
/// Runs inline (no threads) when jobs <= 1 or count <= 1, so callers can
/// unconditionally route through this and let the flag decide. `fn` must be
/// safe to call concurrently for distinct indexes and must not throw.
void ParallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace tdx

#endif  // TDX_COMMON_THREAD_POOL_H_
