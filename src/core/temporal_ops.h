// Temporal operators in dependency bodies — the paper's Section 7
// extension, restricted to the fragment with unambiguous semantics.
//
// Section 7 proposes enriching schema mappings with modal operators
// (sometime/always in the past/future). Operators on the RIGHT-hand side
// raise open questions the paper explicitly leaves unresolved ("is it
// enough to choose an arbitrary snapshot?"), so tdx implements the
// conservative fragment: operators applied to atoms of the LEFT-hand side,
// whose per-snapshot semantics is standard:
//
//   once_past(R(x))     holds at l  iff  R(x) holds at some l' <= l
//   always_past(R(x))   holds at l  iff  R(x) holds at every l' <= l
//   once_future(R(x))   holds at l  iff  R(x) holds at some l' >= l
//   always_future(R(x)) holds at l  iff  R(x) holds at every l' >= l
//
// Implementation: closure materialization + rewriting. For a complete
// concrete relation R+, the set of snapshots at which op(R(a)) holds is
// itself a finite union of intervals, computable from the coalesced
// intervals of R(a):
//
//   once_past:     [min start, inf)
//   always_past:   [0, e0)            e0 = end of the run starting at 0
//   once_future:   [0, max end)       (everything if any run is unbounded)
//   always_future: [s_inf, inf)       s_inf = start of the unbounded run
//
// MaterializeClosure writes these derived facts into an auxiliary concrete
// relation (R__once_past etc.); a body atom under an operator is rewritten
// to refer to the auxiliary relation. The c-chase then applies unchanged,
// and because the closure is plain source data, the correctness theorems
// (Corollary 20, Theorem 21) transfer mechanically — exercised by tests.
//
// The parser supports the syntax directly:
//   tgd PhDgrad(n) & once_past(PhDcan(n)) -> Alum(n);

#ifndef TDX_CORE_TEMPORAL_OPS_H_
#define TDX_CORE_TEMPORAL_OPS_H_

#include <string>

#include "src/common/status.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

enum class TemporalOp {
  kOncePast,      ///< diamond-minus: sometime in the past (reflexive)
  kAlwaysPast,    ///< box-minus: always in the past (reflexive)
  kOnceFuture,    ///< diamond: sometime in the future (reflexive)
  kAlwaysFuture,  ///< box: always in the future (reflexive)
};

/// Keyword used in the text format and in generated relation names
/// ("once_past", ...).
std::string_view TemporalOpName(TemporalOp op);
/// Inverse of TemporalOpName; false if `name` is no operator keyword.
bool TemporalOpFromName(std::string_view name, TemporalOp* out);

/// Name of the auxiliary snapshot relation for op applied to `base`
/// (e.g. "PhDcan__once_past"); the concrete twin gets the usual "+".
std::string ClosureRelationName(std::string_view base, TemporalOp op);

/// Computes the closure facts of concrete relation `rel` in `source` under
/// `op` and inserts them into relation `closure_rel` of `out` (which may
/// alias `source`'s storage owner but must use the same schema). `rel` must
/// be a complete temporal relation; `closure_rel` must have the same data
/// arity. Facts are grouped by data values and coalesced before the
/// interval algebra above is applied.
Status MaterializeClosure(const ConcreteInstance& source, RelationId rel,
                          TemporalOp op, RelationId closure_rel,
                          ConcreteInstance* out);

}  // namespace tdx

#endif  // TDX_CORE_TEMPORAL_OPS_H_
