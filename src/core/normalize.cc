#include "src/core/normalize.h"

#include <algorithm>
#include <map>
#include <optional>

#include "src/core/normalize_detail.h"

namespace tdx {

using normalize_detail::EmitCopy;
using normalize_detail::EmitFragments;
using normalize_detail::IntersectIntervals;
using normalize_detail::UnionFind;

Conjunction RenameTemporalApart(const Conjunction& phi) {
  Conjunction out = phi;
  VarId next = static_cast<VarId>(out.num_vars);
  for (Atom& atom : out.atoms) {
    assert(!atom.terms.empty());
    atom.terms.back() = Term::Var(next++);
  }
  out.num_vars = next;
  out.var_names.resize(next);
  for (std::size_t i = phi.num_vars; i < next; ++i) {
    out.var_names[i] = "t" + std::to_string(i - phi.num_vars + 1);
  }
  return out;
}

ConcreteInstance NaiveNormalize(const ConcreteInstance& instance,
                                NormalizeStats* stats, ResourceGuard* guard) {
  const std::vector<TimePoint> cuts = instance.Endpoints();
  ConcreteInstance out(&instance.schema());
  if (guard != nullptr) {
    guard->ResetFragmentCount();
    guard->PokeFault("normalize/naive");
  }
  instance.facts().ForEach([&](FactView fact) {
    if (guard != nullptr && (guard->tripped() || !guard->CheckDeadline())) {
      return;
    }
    EmitFragments(fact, cuts, &out.mutable_facts(), guard);
  });
  if (stats != nullptr) {
    stats->input_facts = instance.size();
    stats->output_facts = out.size();
    stats->homomorphisms = 0;
    stats->groups = 0;
    stats->delta_facts = instance.size();
    stats->dirty_components = 0;
    stats->reused_components = 0;
    stats->partial = guard != nullptr && guard->tripped();
  }
  return out;
}

ConcreteInstance Normalize(const ConcreteInstance& instance,
                           const std::vector<Conjunction>& phis,
                           NormalizeStats* stats, ResourceGuard* guard,
                           NormalizeLabels* labels) {
  if (guard != nullptr) {
    guard->ResetFragmentCount();
    guard->PokeFault("normalize/algorithm1");
  }
  // Dense ids for the instance's facts: each relation column gets a base
  // offset, and a fact's id is base + its position in the column. No
  // hashing, no fact copies — the instance is immutable for the duration,
  // so views stay valid throughout.
  const Instance& facts = instance.facts();
  const std::size_t num_rels = instance.schema().relation_count();
  std::vector<std::size_t> base(num_rels, 0);
  std::size_t total = 0;
  for (RelationId r = 0; r < num_rels; ++r) {
    base[r] = total;
    total += facts.facts(r).size();
  }
  const auto dense_id = [&](FactView f) {
    return base[f.relation()] + f.pos();
  };

  // Build S (Algorithm 1, line 3): for each phi* in N(Phi+), every
  // homomorphic image whose fact intervals intersect forms a group; then
  // merge groups sharing a fact (lines 4-10) — i.e., take connected
  // components of the overlap graph, implemented with union-find.
  UnionFind uf(total);
  std::vector<bool> grouped(total, false);
  std::size_t hom_count = 0;
  HomomorphismFinder finder(facts);
  for (const Conjunction& phi : phis) {
    if (guard != nullptr && guard->tripped()) break;
    const Conjunction star = RenameTemporalApart(phi);
    finder.ForEach(star, Binding(star.num_vars),
                   [&](const Binding&, const AtomImage& image) {
                     // The hom sweep dominates Algorithm 1's worst case
                     // (Theorem 13), so the deadline is polled here too.
                     if (guard != nullptr && !guard->CheckDeadline()) {
                       return false;
                     }
                     ++hom_count;
                     if (!IntersectIntervals(image).has_value()) return true;
                     const std::size_t first = dense_id(image.front());
                     for (FactView f : image) {
                       const std::size_t idx = dense_id(f);
                       grouped[idx] = true;
                       uf.Union(first, idx);
                     }
                     return true;
                   });
  }

  // Distinct start/end points per component (TP_Delta, lines 11-13).
  // `base` is sorted, so the owning relation is the last base offset <= id;
  // empty relations repeat their successor's offset and the upper_bound
  // lands past all of them.
  const auto fact_at = [&](std::size_t id) {
    const auto it = std::upper_bound(base.begin(), base.end(), id);
    const RelationId r = static_cast<RelationId>(it - base.begin() - 1);
    return facts.facts(r)[static_cast<std::uint32_t>(id - base[r])];
  };
  std::map<std::size_t, std::vector<TimePoint>> component_points;
  for (std::size_t i = 0; i < total; ++i) {
    if (!grouped[i]) continue;
    std::vector<TimePoint>& pts = component_points[uf.Find(i)];
    const Interval iv = fact_at(i).interval();
    pts.push_back(iv.start());
    if (!iv.unbounded()) pts.push_back(iv.end());
  }
  for (auto& [root, pts] : component_points) {
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }

  // Fragment grouped facts at their component's points (lines 14-18);
  // ungrouped facts pass through unchanged. Components are labeled densely
  // in first-emission order when the caller asked for labels.
  ConcreteInstance out(&instance.schema());
  std::map<std::size_t, std::uint32_t> comp_seq;
  if (labels != nullptr) {
    labels->comp_of.clear();
    labels->num_components = 0;
  }
  std::vector<std::uint32_t>* label_vec =
      labels != nullptr ? &labels->comp_of : nullptr;
  for (std::size_t i = 0; i < total; ++i) {
    if (guard != nullptr && guard->tripped()) break;
    const FactView fact = fact_at(i);
    if (grouped[i]) {
      const std::size_t root = uf.Find(i);
      std::uint32_t label = 0;
      if (labels != nullptr) {
        const auto [it, fresh] =
            comp_seq.emplace(root, labels->num_components);
        if (fresh) ++labels->num_components;
        label = it->second;
      }
      EmitFragments(fact, component_points.at(root), &out.mutable_facts(),
                    guard, label, label_vec);
    } else {
      EmitCopy(fact, &out.mutable_facts(), guard, NormalizeLabels::kUngrouped,
               label_vec);
    }
  }
  if (stats != nullptr) {
    stats->input_facts = instance.size();
    stats->output_facts = out.size();
    stats->homomorphisms = hom_count;
    stats->groups = component_points.size();
    stats->delta_facts = instance.size();
    stats->dirty_components = component_points.size();
    stats->reused_components = 0;
    stats->partial = guard != nullptr && guard->tripped();
  }
  return out;
}

bool HasEmptyIntersectionProperty(const ConcreteInstance& instance,
                                  const std::vector<Conjunction>& phis) {
  HomomorphismFinder finder(instance.facts());
  for (const Conjunction& phi : phis) {
    const Conjunction star = RenameTemporalApart(phi);
    bool ok = true;
    finder.ForEach(star, Binding(star.num_vars),
                   [&](const Binding&, const AtomImage& image) {
                     const std::optional<Interval> inter =
                         IntersectIntervals(image);
                     if (!inter.has_value()) return true;  // condition 1
                     // Condition 2: intersection == union, i.e. all image
                     // facts carry one identical interval.
                     for (FactView f : image) {
                       if (f.interval() != *inter) {
                         ok = false;
                         return false;
                       }
                     }
                     return true;
                   });
    if (!ok) return false;
  }
  return true;
}

}  // namespace tdx
