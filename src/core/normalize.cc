#include "src/core/normalize.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <unordered_map>

namespace tdx {

namespace {

/// Intersection of the time intervals of a set of facts, or nullopt when
/// empty. `facts` must be non-empty.
std::optional<Interval> IntersectIntervals(const std::vector<Fact>& facts) {
  std::optional<Interval> acc = facts.front().interval();
  for (std::size_t i = 1; i < facts.size() && acc.has_value(); ++i) {
    acc = acc->Intersect(facts[i].interval());
  }
  return acc;
}

/// Fragments `fact` at the interior cut points in `cuts` (sorted) and
/// inserts the fragments into `out`, charging `guard` per fragment. Returns
/// false when the guard tripped (the fact may be partially fragmented).
bool FragmentFactInto(const Fact& fact, const std::vector<TimePoint>& cuts,
                      Instance* out, ResourceGuard* guard) {
  for (const Interval& sub : FragmentInterval(fact.interval(), cuts)) {
    if (guard != nullptr && !guard->ChargeFragment()) return false;
    out->Insert(fact.WithInterval(sub));
  }
  return true;
}

/// Union-find over dense fact indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Conjunction RenameTemporalApart(const Conjunction& phi) {
  Conjunction out = phi;
  VarId next = static_cast<VarId>(out.num_vars);
  for (Atom& atom : out.atoms) {
    assert(!atom.terms.empty());
    atom.terms.back() = Term::Var(next++);
  }
  out.num_vars = next;
  out.var_names.resize(next);
  for (std::size_t i = phi.num_vars; i < next; ++i) {
    out.var_names[i] = "t" + std::to_string(i - phi.num_vars + 1);
  }
  return out;
}

ConcreteInstance NaiveNormalize(const ConcreteInstance& instance,
                                NormalizeStats* stats, ResourceGuard* guard) {
  const std::vector<TimePoint> cuts = instance.Endpoints();
  ConcreteInstance out(&instance.schema());
  if (guard != nullptr) {
    guard->ResetFragmentCount();
    guard->PokeFault("normalize/naive");
  }
  instance.facts().ForEach([&](const Fact& fact) {
    if (guard != nullptr && (guard->tripped() || !guard->CheckDeadline())) {
      return;
    }
    FragmentFactInto(fact, cuts, &out.mutable_facts(), guard);
  });
  if (stats != nullptr) {
    stats->input_facts = instance.size();
    stats->output_facts = out.size();
    stats->homomorphisms = 0;
    stats->groups = 0;
  }
  return out;
}

ConcreteInstance Normalize(const ConcreteInstance& instance,
                           const std::vector<Conjunction>& phis,
                           NormalizeStats* stats, ResourceGuard* guard) {
  if (guard != nullptr) {
    guard->ResetFragmentCount();
    guard->PokeFault("normalize/algorithm1");
  }
  // Dense ids for the instance's facts, for union-find grouping.
  std::vector<Fact> all_facts;
  std::unordered_map<Fact, std::size_t, FactHash> fact_index;
  instance.facts().ForEach([&](const Fact& fact) {
    fact_index.emplace(fact, all_facts.size());
    all_facts.push_back(fact);
  });

  // Build S (Algorithm 1, line 3): for each phi* in N(Phi+), every
  // homomorphic image whose fact intervals intersect forms a group; then
  // merge groups sharing a fact (lines 4-10) — i.e., take connected
  // components of the overlap graph, implemented with union-find.
  UnionFind uf(all_facts.size());
  std::vector<bool> grouped(all_facts.size(), false);
  std::size_t hom_count = 0;
  HomomorphismFinder finder(instance.facts());
  for (const Conjunction& phi : phis) {
    if (guard != nullptr && guard->tripped()) break;
    const Conjunction star = RenameTemporalApart(phi);
    finder.ForEach(star, Binding(star.num_vars),
                   [&](const Binding&, const AtomImage& image) {
                     // The hom sweep dominates Algorithm 1's worst case
                     // (Theorem 13), so the deadline is polled here too.
                     if (guard != nullptr && !guard->CheckDeadline()) {
                       return false;
                     }
                     ++hom_count;
                     if (!IntersectIntervals(image).has_value()) return true;
                     const std::size_t first = fact_index.at(image.front());
                     for (const Fact& f : image) {
                       const std::size_t idx = fact_index.at(f);
                       grouped[idx] = true;
                       uf.Union(first, idx);
                     }
                     return true;
                   });
  }

  // Distinct start/end points per component (TP_Delta, lines 11-13).
  std::map<std::size_t, std::vector<TimePoint>> component_points;
  for (std::size_t i = 0; i < all_facts.size(); ++i) {
    if (!grouped[i]) continue;
    std::vector<TimePoint>& pts = component_points[uf.Find(i)];
    const Interval& iv = all_facts[i].interval();
    pts.push_back(iv.start());
    if (!iv.unbounded()) pts.push_back(iv.end());
  }
  for (auto& [root, pts] : component_points) {
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }

  // Fragment grouped facts at their component's points (lines 14-18);
  // ungrouped facts pass through unchanged.
  ConcreteInstance out(&instance.schema());
  for (std::size_t i = 0; i < all_facts.size(); ++i) {
    if (guard != nullptr && guard->tripped()) break;
    if (grouped[i]) {
      FragmentFactInto(all_facts[i], component_points.at(uf.Find(i)),
                       &out.mutable_facts(), guard);
    } else {
      if (guard != nullptr && !guard->ChargeFragment()) break;
      out.mutable_facts().Insert(all_facts[i]);
    }
  }
  if (stats != nullptr) {
    stats->input_facts = instance.size();
    stats->output_facts = out.size();
    stats->homomorphisms = hom_count;
    stats->groups = component_points.size();
  }
  return out;
}

bool HasEmptyIntersectionProperty(const ConcreteInstance& instance,
                                  const std::vector<Conjunction>& phis) {
  HomomorphismFinder finder(instance.facts());
  for (const Conjunction& phi : phis) {
    const Conjunction star = RenameTemporalApart(phi);
    bool ok = true;
    finder.ForEach(star, Binding(star.num_vars),
                   [&](const Binding&, const AtomImage& image) {
                     const std::optional<Interval> inter =
                         IntersectIntervals(image);
                     if (!inter.has_value()) return true;  // condition 1
                     // Condition 2: intersection == union, i.e. all image
                     // facts carry one identical interval.
                     for (const Fact& f : image) {
                       if (f.interval() != *inter) {
                         ok = false;
                         return false;
                       }
                     }
                     return true;
                   });
    if (!ok) return false;
  }
  return true;
}

}  // namespace tdx
