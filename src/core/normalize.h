// Normalization of concrete instances (Section 4.2).
//
// To chase a concrete instance, homomorphisms from dependency bodies — in
// which every atom shares one temporal variable t — must be able to map t
// to a single interval. A concrete instance is *normalized* w.r.t. a set of
// temporal conjunctions Phi+ (Definition 7) iff it has the *empty
// intersection property* (Definition 10, equivalent by Theorem 11): for
// every homomorphism from a phi* in N(Phi+) (phi with the temporal variable
// renamed apart per atom) to the instance, the time intervals of the image
// facts are either pairwise-equal or have empty intersection. Intervals
// then "behave as constants".
//
// Two normalizers, mirroring the paper's trade-off discussion:
//
//  * NaiveNormalize — ignores Phi+: fragments every fact at every distinct
//    endpoint of the whole instance. O(n log n) time, but possibly many
//    unnecessary fragments (Figure 6).
//
//  * Normalize (Algorithm 1, norm(Ic, Phi+)) — fragments only the facts
//    that co-occur in the image of some phi* with overlapping intervals,
//    merging overlapping groups first (implemented with union-find).
//    Polynomial for fixed Phi+, and the output never has more facts than
//    the naive normalizer's (Figure 5 vs Figure 6).
//
// Both preserve the [[.]] semantics: fragments carry the original data
// values, and annotated nulls are re-annotated to each fragment's interval
// (fragments of one null still project onto the same null sequence).

#ifndef TDX_CORE_NORMALIZE_H_
#define TDX_CORE_NORMALIZE_H_

#include <cstdint>
#include <vector>

#include "src/common/resource.h"
#include "src/relational/homomorphism.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

struct NormalizeStats {
  std::size_t input_facts = 0;
  std::size_t output_facts = 0;
  /// Homomorphisms from renamed-apart conjunctions found while building S.
  /// The incremental normalizer sweeps only delta-seeded homs, so this
  /// counts fewer enumerations than a full pass over the same instance.
  std::size_t homomorphisms = 0;
  /// Connected components of overlapping fact groups (the merged S of
  /// Algorithm 1). Always 0 for the naive normalizer.
  std::size_t groups = 0;
  /// Facts treated as new since the last pass. Full passes (and the naive
  /// normalizer) count every input fact here.
  std::size_t delta_facts = 0;
  /// Components re-fragmented this pass. A full pass dirties every group.
  std::size_t dirty_components = 0;
  /// Components of the previous pass copied through untouched. Always 0 for
  /// full passes.
  std::size_t reused_components = 0;
  /// True when the guard tripped mid-pass and the output is partially
  /// normalized (garbage per the guard contract below).
  bool partial = false;
};

/// Component labels of a normalized output, parallel to its emission order:
/// `comp_of[i]` is the component of the i-th emitted fact (relation-major,
/// ascending position), or kUngrouped for pass-through facts. Component ids
/// are dense in [0, num_components). Produced on demand by Normalize so the
/// incremental normalizer can tell which prior components a later delta
/// touches; purely bookkeeping — no effect on the normalized instance.
struct NormalizeLabels {
  static constexpr std::uint32_t kUngrouped = 0xFFFFFFFFu;
  std::vector<std::uint32_t> comp_of;
  std::uint32_t num_components = 0;
};

/// N(phi): renames the temporal position of every atom to a fresh variable,
/// yielding phi*. Precondition: every atom's relation is temporal (the
/// conjunction is a lifted lhs). The data variables keep their ids.
Conjunction RenameTemporalApart(const Conjunction& phi);

/// The naive endpoint normalizer (Section 4.2): fragments every fact at all
/// distinct endpoints occurring in the instance.
///
/// Both normalizers charge `guard` (when non-null) one unit per emitted
/// fragment and poll its deadline; a run whose guard trips stops early and
/// returns a PARTIALLY normalized instance — callers must check
/// guard->tripped() (mirrored in NormalizeStats::partial) and treat the
/// result as garbage. The fragment budget is per pass: the counter is reset
/// on entry. Fault sites: "normalize/naive" and "normalize/algorithm1"
/// (plus "normalize/incremental" in normalize_incremental.h).
ConcreteInstance NaiveNormalize(const ConcreteInstance& instance,
                                NormalizeStats* stats = nullptr,
                                ResourceGuard* guard = nullptr);

/// Algorithm 1, norm(Ic, Phi+). `phis` are temporal conjunctions — in the
/// chase they are the lifted lhs of the s-t tgds or of the egds. See
/// NaiveNormalize for the `guard` contract. When `labels` is non-null it
/// receives the output's component labels (meaningless if the guard trips).
ConcreteInstance Normalize(const ConcreteInstance& instance,
                           const std::vector<Conjunction>& phis,
                           NormalizeStats* stats = nullptr,
                           ResourceGuard* guard = nullptr,
                           NormalizeLabels* labels = nullptr);

/// Definition 10: checks the empty intersection property of `instance`
/// w.r.t. `phis` — by Theorem 11, equivalent to being normalized.
bool HasEmptyIntersectionProperty(const ConcreteInstance& instance,
                                  const std::vector<Conjunction>& phis);

}  // namespace tdx

#endif  // TDX_CORE_NORMALIZE_H_
