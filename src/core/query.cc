#include "src/core/query.h"

#include <algorithm>
#include <unordered_set>

namespace tdx {

namespace {

std::unordered_set<VarId> VarsOf(const Conjunction& conj) {
  std::unordered_set<VarId> vars;
  for (const Atom& atom : conj.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

}  // namespace

Status ConjunctiveQuery::Validate() const {
  const std::unordered_set<VarId> body_vars = VarsOf(body);
  for (VarId v : head) {
    if (body_vars.count(v) == 0) {
      return Status::InvalidArgument("query '" + name +
                                     "': head variable missing from body");
    }
  }
  return Status::OK();
}

Status UnionQuery::Validate() const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("union query '" + name +
                                   "' has no disjuncts");
  }
  const std::size_t arity = disjuncts.front().head.size();
  for (const ConjunctiveQuery& q : disjuncts) {
    TDX_RETURN_IF_ERROR(q.Validate());
    if (q.head.size() != arity) {
      return Status::InvalidArgument("union query '" + name +
                                     "': disjunct arity mismatch");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString(const Schema& schema,
                                       const Universe& u) const {
  auto var_name = [this](VarId v) {
    return (v < body.var_names.size() && !body.var_names[v].empty())
               ? body.var_names[v]
               : ("?" + std::to_string(v));
  };
  std::string out = name.empty() ? "q" : name;
  out += "(";
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += var_name(head[i]);
  }
  out += ") :- ";
  out += body.ToString(schema, u);
  return out;
}

Result<ConjunctiveQuery> LiftQuery(const ConjunctiveQuery& query,
                                   const Schema& schema) {
  ConjunctiveQuery out = query;
  const VarId t_var = static_cast<VarId>(out.body.num_vars);
  for (Atom& atom : out.body.atoms) {
    TDX_ASSIGN_OR_RETURN(RelationId twin, schema.TwinOf(atom.rel));
    if (!schema.relation(twin).temporal) {
      return Status::InvalidArgument(
          "lifting requires the twin of '" + schema.relation(atom.rel).name +
          "' to be temporal");
    }
    atom.rel = twin;
    atom.terms.push_back(Term::Var(t_var));
  }
  out.body.num_vars = t_var + 1;
  out.body.var_names.resize(out.body.num_vars);
  out.body.var_names[t_var] = "t";
  out.head.push_back(t_var);
  out.temporal_var = t_var;
  if (!out.name.empty()) out.name += "+";
  return out;
}

Result<UnionQuery> LiftUnionQuery(const UnionQuery& query,
                                  const Schema& schema) {
  UnionQuery out;
  out.name = query.name.empty() ? "" : (query.name + "+");
  for (const ConjunctiveQuery& q : query.disjuncts) {
    TDX_ASSIGN_OR_RETURN(ConjunctiveQuery lifted, LiftQuery(q, schema));
    out.disjuncts.push_back(std::move(lifted));
  }
  return out;
}

std::vector<Tuple> Evaluate(const ConjunctiveQuery& query,
                            const Instance& instance) {
  std::vector<Tuple> out;
  HomomorphismFinder finder(instance);
  finder.ForEach(query.body, Binding(query.body.num_vars),
                 [&](const Binding& binding, const AtomImage&) {
                   Tuple tuple;
                   tuple.reserve(query.head.size());
                   for (VarId v : query.head) tuple.push_back(binding.Get(v));
                   out.push_back(std::move(tuple));
                   return true;
                 });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Tuple> Evaluate(const UnionQuery& query,
                            const Instance& instance) {
  std::vector<Tuple> out;
  for (const ConjunctiveQuery& q : query.disjuncts) {
    std::vector<Tuple> part = Evaluate(q, instance);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Tuple> DropTuplesWithNulls(std::vector<Tuple> tuples) {
  tuples.erase(std::remove_if(tuples.begin(), tuples.end(),
                              [](const Tuple& t) {
                                for (const Value& v : t) {
                                  if (v.is_any_null()) return true;
                                }
                                return false;
                              }),
               tuples.end());
  return tuples;
}

std::string TupleToString(const Tuple& tuple, const Universe& u) {
  std::string out = "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += u.Render(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace tdx
