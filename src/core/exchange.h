// High-level facade: one object that owns a data exchange setting and
// walks a user through the whole workflow of the paper.
//
//   auto exchange = tdx::Exchange::FromProgram(text).value();
//   if (!exchange->HasSolution()) { ... failure_reason() ... }
//   exchange->Solution();                  // the c-chase result (cached)
//   exchange->CertainAnswers("salaries");  // certain answers of a query
//   exchange->AnswersAt("salaries", 2013); // ... sliced at a snapshot
//   exchange->Verify();                    // Corollary 20 on this instance
//
// The facade wraps the lower-level modules without hiding them: the parsed
// program, the chase outcome, and the solution instance stay accessible.

#ifndef TDX_CORE_EXCHANGE_H_
#define TDX_CORE_EXCHANGE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/align.h"
#include "src/core/naive_eval.h"
#include "src/parser/parser.h"

namespace tdx {

class Exchange {
 public:
  /// Parses a program and runs the c-chase immediately. Returns parse or
  /// validation errors; chase FAILURE is not an error (see HasSolution).
  static Result<std::unique_ptr<Exchange>> FromProgram(std::string_view text);

  /// Runs the c-chase on an already-parsed program (takes ownership).
  static Result<std::unique_ptr<Exchange>> FromParsed(
      std::unique_ptr<ParsedProgram> program);

  /// False iff the chase failed: no target instance satisfies the mapping.
  bool HasSolution() const {
    return outcome_.kind == ChaseResultKind::kSuccess;
  }
  const std::string& failure_reason() const {
    return outcome_.failure_reason;
  }

  /// The concrete solution Jc. Precondition: HasSolution().
  const ConcreteInstance& Solution() const {
    assert(HasSolution());
    return outcome_.target;
  }

  /// Certain answers of the named query as temporal (k+1)-tuples
  /// (Corollary 22). Lifting is cached per query.
  Result<std::vector<Tuple>> CertainAnswers(std::string_view query_name);

  /// Certain answers at one snapshot (k-tuples).
  Result<std::vector<Tuple>> AnswersAt(std::string_view query_name,
                                       TimePoint l);

  /// Verifies Corollary 20 for this instance (both chases + homomorphic
  /// equivalence). Expensive; intended for tests and audits.
  Result<AlignmentReport> Verify();

  const ParsedProgram& program() const { return *program_; }
  const CChaseOutcome& outcome() const { return outcome_; }
  Universe& universe() { return program_->universe; }

 private:
  Exchange(std::unique_ptr<ParsedProgram> program, CChaseOutcome outcome)
      : program_(std::move(program)), outcome_(std::move(outcome)) {}

  Result<const UnionQuery*> LiftedQuery(std::string_view name);

  std::unique_ptr<ParsedProgram> program_;
  CChaseOutcome outcome_;
  std::unordered_map<std::string, UnionQuery> lifted_queries_;
};

}  // namespace tdx

#endif  // TDX_CORE_EXCHANGE_H_
