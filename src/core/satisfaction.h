// Direct satisfaction checking: is (Ic, Jc) a solution?
//
// Section 3 defines a solution snapshot-wise: Ja is a solution for Ia iff
// every snapshot pair satisfies Sigma_st (and the target snapshots satisfy
// Sigma_t and Sigma_eg), with nulls treated as values (naive-table
// satisfaction). CheckSolution evaluates this on concrete instances by
// materializing one representative snapshot per constant run — the
// endpoints of both instances cut the timeline into runs on which the
// snapshots do not change, so checking the run starts (plus the stable
// tail) decides all time points.
//
// This is the library's independent oracle: the chase THEOREMS say chase
// results are (universal) solutions; CheckSolution verifies "solution"
// without involving the chase, which is how the test suite cross-checks
// the two implementations against each other.

#ifndef TDX_CORE_SATISFACTION_H_
#define TDX_CORE_SATISFACTION_H_

#include <string>

#include "src/relational/dependency.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

struct SatisfactionReport {
  bool satisfied = true;
  /// When violated: which dependency, at which time point.
  std::string violation;
  std::optional<TimePoint> violation_time;
};

/// Checks that one relational snapshot pair satisfies a NON-temporal
/// mapping: every s-t tgd body homomorphism into `source` extends into
/// `target`; every target tgd body homomorphism into `target` extends into
/// `target`; no egd is violated in `target`. Nulls compare as values.
SatisfactionReport CheckSnapshotSolution(const Instance& source,
                                         const Instance& target,
                                         const Mapping& mapping);

/// Checks that [[target]] is a solution for [[source]] w.r.t. the
/// NON-temporal `mapping`, by checking every representative snapshot.
Result<SatisfactionReport> CheckSolution(const ConcreteInstance& source,
                                         const ConcreteInstance& target,
                                         const Mapping& mapping,
                                         Universe* universe);

}  // namespace tdx

#endif  // TDX_CORE_SATISFACTION_H_
