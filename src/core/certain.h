// Certain answers (Section 5, Corollary 22).
//
// certain(q, Ia, M) is, per snapshot, the intersection of q's answers over
// all solutions. By the universal-solution theorem it equals naive
// evaluation on the chase result; Corollary 22 carries this to the concrete
// view: certain(q, [[Ic]], M) = [[q+(Jc)!]] where Jc = c-chase(Ic).
//
// Two entry points:
//  * CertainAnswers — the production path: c-chase, then concrete naive
//    evaluation; answers are temporal (k+1)-tuples.
//  * BruteForceCertainAnswersAt — test oracle for small instances: chases a
//    materialized snapshot, then intersects the query's answers over a
//    family of derived solutions (the universal solution and random
//    homomorphic images of it). Sound because every derived instance IS a
//    solution; the universal solution makes the intersection exact for
//    unions of conjunctive queries.

#ifndef TDX_CORE_CERTAIN_H_
#define TDX_CORE_CERTAIN_H_

#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/relational/chase.h"

namespace tdx {

struct CertainAnswersResult {
  /// kFailure means no solution exists; then certain answers are trivially
  /// "everything" (the paper leaves this case to convention) and `answers`
  /// is empty. kAborted means the chase ran out of budget — `answers` is
  /// empty and MUST NOT be interpreted as certain.
  ChaseResultKind chase_kind = ChaseResultKind::kSuccess;
  std::vector<Tuple> answers;
};

/// certain(q, [[Ic]], M) as temporal tuples: runs the c-chase of `source`
/// under `lifted` and naive-evaluates the lifted query on the result.
/// `limits` governs both the chase and the evaluation's normalization.
Result<CertainAnswersResult> CertainAnswers(const UnionQuery& lifted_query,
                                            const ConcreteInstance& source,
                                            const Mapping& lifted_mapping,
                                            Universe* universe,
                                            const ChaseLimits& limits = {});

/// Test oracle: certain answers of the non-temporal `query` on the snapshot
/// db_l of [[source]] under the non-temporal `mapping`, computed as naive
/// evaluation on the per-snapshot chase result.
Result<CertainAnswersResult> CertainAnswersAt(const UnionQuery& query,
                                              const ConcreteInstance& source,
                                              const Mapping& mapping,
                                              TimePoint l, Universe* universe,
                                              const ChaseLimits& limits = {});

/// CertainAnswersAt for a batch of time points, with the per-point snapshot
/// chases fanned out over `jobs` threads. Snapshots are materialized
/// sequentially (SnapshotAt memoizes null projections into `universe`,
/// which is not thread-safe); each chase then runs against a scratch
/// Universe, whose nulls never reach the answers (naive evaluation drops
/// tuples with nulls). results[i] corresponds to points[i] and is identical
/// to CertainAnswersAt(query, source, mapping, points[i], ...) regardless
/// of `jobs`.
Result<std::vector<CertainAnswersResult>> CertainAnswersAtMany(
    const UnionQuery& query, const ConcreteInstance& source,
    const Mapping& mapping, const std::vector<TimePoint>& points,
    Universe* universe, unsigned jobs = 1, const ChaseLimits& limits = {});

}  // namespace tdx

#endif  // TDX_CORE_CERTAIN_H_
