#include "src/core/satisfaction.h"

#include <algorithm>

#include "src/relational/homomorphism.h"
#include "src/temporal/snapshot.h"

namespace tdx {

namespace {

/// Every homomorphism from `tgd.body` into `body_side` must extend to a
/// homomorphism of `tgd.head` into `head_side`.
bool TgdSatisfied(const Tgd& tgd, const Instance& body_side,
                  const Instance& head_side) {
  HomomorphismFinder body_finder(body_side);
  HomomorphismFinder head_finder(head_side);
  bool satisfied = true;
  body_finder.ForEach(tgd.body, Binding(tgd.num_vars()),
                      [&](const Binding& binding, const AtomImage&) {
                        if (!head_finder.Exists(tgd.head, binding)) {
                          satisfied = false;
                          return false;
                        }
                        return true;
                      });
  return satisfied;
}

bool EgdSatisfied(const Egd& egd, const Instance& target) {
  HomomorphismFinder finder(target);
  bool satisfied = true;
  finder.ForEach(egd.body, Binding(egd.num_vars()),
                 [&](const Binding& binding, const AtomImage&) {
                   if (binding.Get(egd.x1) != binding.Get(egd.x2)) {
                     satisfied = false;
                     return false;
                   }
                   return true;
                 });
  return satisfied;
}

}  // namespace

SatisfactionReport CheckSnapshotSolution(const Instance& source,
                                         const Instance& target,
                                         const Mapping& mapping) {
  SatisfactionReport report;
  for (const Tgd& tgd : mapping.st_tgds) {
    if (!TgdSatisfied(tgd, source, target)) {
      report.satisfied = false;
      report.violation = "s-t tgd '" + tgd.label + "' violated";
      return report;
    }
  }
  for (const Tgd& tgd : mapping.target_tgds) {
    if (!TgdSatisfied(tgd, target, target)) {
      report.satisfied = false;
      report.violation = "target tgd '" + tgd.label + "' violated";
      return report;
    }
  }
  for (const Egd& egd : mapping.egds) {
    if (!EgdSatisfied(egd, target)) {
      report.satisfied = false;
      report.violation = "egd '" + egd.label + "' violated";
      return report;
    }
  }
  return report;
}

Result<SatisfactionReport> CheckSolution(const ConcreteInstance& source,
                                         const ConcreteInstance& target,
                                         const Mapping& mapping,
                                         Universe* universe) {
  // Representative time points: 0, every endpoint of either instance, and
  // one point past the last change (the stable tail).
  std::vector<TimePoint> points = source.Endpoints();
  {
    const std::vector<TimePoint> more = target.Endpoints();
    points.insert(points.end(), more.begin(), more.end());
  }
  points.push_back(0);
  points.push_back(std::max(source.StabilizationPoint(),
                            target.StabilizationPoint()) +
                   1);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (TimePoint l : points) {
    TDX_ASSIGN_OR_RETURN(Instance src_snap, SnapshotAt(source, l, universe));
    TDX_ASSIGN_OR_RETURN(Instance tgt_snap, SnapshotAt(target, l, universe));
    SatisfactionReport report =
        CheckSnapshotSolution(src_snap, tgt_snap, mapping);
    if (!report.satisfied) {
      report.violation += " at time " + TimePointToString(l);
      report.violation_time = l;
      return report;
    }
  }
  return SatisfactionReport{};
}

}  // namespace tdx
