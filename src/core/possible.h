// Possible answers over incomplete snapshots.
//
// Certain answers (Section 5) are the tuples in q's answer under EVERY
// valuation of the nulls; their classic complement is the POSSIBLE answers
// — tuples in the answer under SOME valuation (Imielinski & Lipski 1984,
// maybe-semantics on naive tables). The paper does not treat possible
// answers, and their temporal lifting involves design choices the paper
// never makes, so tdx keeps the well-defined per-snapshot form:
//
//   PossibleAnswersAt(q, Jc, l) = { t | exists valuation v of the nulls of
//                                       db_l with t in q(v(db_l)) }
//
// computed by evaluating q with UNIFICATION: a null in a fact may match any
// query-side term, but consistently — one null takes one value within a
// match. Answer positions that end up unconstrained are reported as the
// null itself (a wildcard: any constant substituted there works). Certain
// answers are exactly the possible answers that contain no wildcard and
// hold under every valuation; the inclusion certain ⊆ possible (restricted
// to null-free tuples) is exercised by tests.

#ifndef TDX_CORE_POSSIBLE_H_
#define TDX_CORE_POSSIBLE_H_

#include "src/core/query.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// Possible answers of a non-temporal UCQ on one relational instance with
/// nulls (a snapshot). Deduplicated, sorted; wildcard positions hold the
/// null that remained unconstrained.
std::vector<Tuple> PossibleAnswers(const UnionQuery& query,
                                   const Instance& snapshot);

/// Possible answers at snapshot l of [[jc]].
Result<std::vector<Tuple>> PossibleAnswersAt(const UnionQuery& query,
                                             const ConcreteInstance& jc,
                                             TimePoint l, Universe* universe);

}  // namespace tdx

#endif  // TDX_CORE_POSSIBLE_H_
