#include "src/core/solution_core.h"

#include <unordered_map>

#include "src/relational/universal.h"

namespace tdx {

namespace {

/// Applies the endomorphism witnessed by (null_vars, binding) to the
/// instance, producing its image.
Instance ApplyEndomorphism(
    const Instance& instance,
    const std::unordered_map<Value, VarId, ValueHash>& null_vars,
    const Binding& binding) {
  Instance image(&instance.schema());
  instance.ForEach([&](FactView fact) {
    std::vector<Value> args;
    args.reserve(fact.arity());
    for (const Value& v : fact.args()) {
      auto it = null_vars.find(v);
      args.push_back(it == null_vars.end() ? v : binding.Get(it->second));
    }
    image.Insert(Fact(fact.relation(), std::move(args)));
  });
  return image;
}

/// Finds a proper endomorphism (image smaller than the instance itself) and
/// returns its image, or nullopt when the instance is a core.
std::optional<Instance> ProperEndomorphismImage(const Instance& instance) {
  std::unordered_map<Value, VarId, ValueHash> null_vars;
  const Conjunction conj = InstanceToConjunction(instance, &null_vars);
  if (null_vars.empty()) return std::nullopt;  // no nulls: already a core

  HomomorphismFinder finder(instance);
  std::optional<Instance> image;
  finder.ForEach(conj, Binding(conj.num_vars),
                 [&](const Binding& binding, const AtomImage&) {
                   Instance candidate =
                       ApplyEndomorphism(instance, null_vars, binding);
                   if (candidate.size() < instance.size()) {
                     image = std::move(candidate);
                     return false;  // found a proper retraction
                   }
                   return true;
                 });
  return image;
}

}  // namespace

Instance ComputeCore(const Instance& instance, CoreStats* stats) {
  Instance current = instance;
  std::size_t rounds = 0;
  while (true) {
    std::optional<Instance> image = ProperEndomorphismImage(current);
    if (!image.has_value()) break;
    current = std::move(*image);
    ++rounds;
  }
  if (stats != nullptr) {
    stats->rounds = rounds;
    stats->facts_removed = instance.size() - current.size();
  }
  return current;
}

ConcreteInstance ComputeConcreteCore(const ConcreteInstance& instance,
                                     CoreStats* stats) {
  return ConcreteInstance(ComputeCore(instance.facts(), stats));
}

bool IsCore(const Instance& instance) {
  return !ProperEndomorphismImage(instance).has_value();
}

}  // namespace tdx
