// Cores of (universal) solutions.
//
// The paper's future-work section points at revisiting the classical data
// exchange notion of the *core* (Fagin, Kolaitis, Popa: "Data exchange:
// getting to the core", TODS 2005) in the temporal setting. The core of an
// instance J with nulls is the smallest induced subinstance that J retracts
// onto — the unique (up to isomorphism) smallest universal solution.
//
// This module implements cores for both views:
//
//  * ComputeCore — classical: repeatedly finds a proper endomorphism (a
//    homomorphism of the instance into itself whose image misses at least
//    one fact) and replaces the instance by its image, until none exists.
//
//  * ComputeConcreteCore — the same procedure on a concrete instance.
//    Because the temporal attribute is a value that must map to itself,
//    an endomorphism can only fold a fact into another fact with the SAME
//    interval; per-snapshot, this is exactly a snapshot endomorphism
//    applied uniformly over the fact's span, so the result's semantics is
//    homomorphically equivalent to the input's (exercised by tests).
//
// Complexity: each round enumerates homomorphisms of the instance into
// itself (exponential in the number of nulls in the worst case; fast on
// chase results, whose nulls live in small independent blocks).

#ifndef TDX_CORE_SOLUTION_CORE_H_
#define TDX_CORE_SOLUTION_CORE_H_

#include "src/relational/instance.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

struct CoreStats {
  std::size_t rounds = 0;        ///< proper endomorphisms applied
  std::size_t facts_removed = 0; ///< input size minus output size
};

/// Core of a relational instance with (labeled or annotated) nulls.
Instance ComputeCore(const Instance& instance, CoreStats* stats = nullptr);

/// Core of a concrete instance; folds only within equal-interval facts.
ConcreteInstance ComputeConcreteCore(const ConcreteInstance& instance,
                                     CoreStats* stats = nullptr);

/// True iff the instance has no proper endomorphism (it is its own core).
bool IsCore(const Instance& instance);

}  // namespace tdx

#endif  // TDX_CORE_SOLUTION_CORE_H_
