// The concrete chase, c-chase (Section 4.3, Definition 16).
//
// Given a lifted data exchange setting M+ = (R+S, R+T, Sigma+st, Sigma+eg)
// and a concrete source instance, the c-chase is:
//
//   1. normalize the source w.r.t. the lhs of Sigma+st (Algorithm 1), so
//      that each dependency's shared temporal variable t can map to a
//      single interval;
//   2. apply all s-t tgd c-chase steps: a step fired by homomorphism h
//      mints, for each existential variable, a fresh null ANNOTATED WITH
//      h(t) — the interval-annotated nulls of Section 4.1;
//   3. normalize the target w.r.t. the lhs of Sigma+eg (fragmenting a fact
//      re-annotates its nulls to the fragment's interval);
//   4. apply egd c-chase steps to fixpoint: equating two distinct non-null
//      values is a failure (no solution exists, Theorem 19(2)); otherwise
//      an annotated null is replaced everywhere by the other value. All
//      values equated by an egd step share one interval, because the egd's
//      atoms share t.
//
// The result of a successful c-chase is a *concrete solution*; its
// semantics [[Jc]] is a universal solution of [[Ic]] (Theorem 19), i.e.
// homomorphically equivalent to the abstract chase result (Corollary 20) —
// verified end-to-end by core/align.h.

#ifndef TDX_CORE_CCHASE_H_
#define TDX_CORE_CCHASE_H_

#include <string>

#include "src/core/normalize.h"
#include "src/relational/chase.h"
#include "src/temporal/coalesce.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

struct CChaseOptions {
  /// Coalesce the final target (canonical compact form). Off by default to
  /// match the paper's Figure 9 output shape.
  bool coalesce_result = false;
  /// Normalize (Algorithm 1) vs NaiveNormalize for the two normalization
  /// steps. Algorithm 1 by default; the naive normalizer is exposed for the
  /// ablation benchmarks.
  bool use_naive_normalizer = false;
  /// Reuse normalization work across target passes (see
  /// core/normalize_incremental.h): after the first full pass, each
  /// normalize_target seeds its homomorphism sweep from the facts appended
  /// since the previous pass and re-fragments only the touched components.
  /// Never changes the result (output is bit-identical to full passes at
  /// any --jobs), so the checkpoint config fingerprint ignores it and
  /// checkpoints interchange between incremental and full runs. Ignored
  /// under use_naive_normalizer. --no-incremental-normalize in the CLI.
  bool incremental_normalize = true;
  /// Resource budget for the whole run (all four phases share one guard).
  /// Unlimited by default. Exhaustion yields kind == kAborted with partial
  /// stats and the exhausted dimension; rerunning the same source with a
  /// larger budget yields the identical solution.
  ChaseLimits limits;
  /// Semi-naive target-tgd rounds (see ChaseOptions::semi_naive). The
  /// frontier is re-seeded with the full instance after every normalization
  /// step, since fragmentation rewrites existing facts.
  bool semi_naive = true;
  /// Checkpoint/resume hooks; see ChaseOptions for the contract. Safe
  /// points: "init" (nothing run), "st-tgd" (source normalized), "loop-top"
  /// (target materialized, next step normalizes it), "rounds" (between two
  /// fired target-tgd rounds). Normalization passes and egd fixpoints are
  /// atomic between safe points — a kill inside one redoes the whole phase
  /// identically on resume.
  Checkpointer* checkpointer = nullptr;
  const ChaseCheckpoint* resume_from = nullptr;
  /// Consult the chase planner's schedule (see ChaseOptions::scheduled):
  /// skip dead rules, provably no-op egd fixpoints and provably no-op
  /// re-normalization passes, and collect triggers of non-interfering tgds
  /// concurrently. Never changes the result; off = the flat engine.
  bool scheduled = true;
  /// Worker threads for parallel trigger collection (see
  /// ChaseOptions::jobs). 1 = fully sequential.
  unsigned jobs = 1;
};

struct CChaseOutcome {
  CChaseOutcome(ConcreteInstance normalized_source_in,
                ConcreteInstance target_in)
      : normalized_source(std::move(normalized_source_in)),
        target(std::move(target_in)) {}

  ChaseResultKind kind = ChaseResultKind::kSuccess;
  /// The source after step 1 (useful to inspect; Figure 5 of the paper).
  ConcreteInstance normalized_source;
  /// The concrete solution (valid iff kind == kSuccess). On kAborted it
  /// holds whatever was materialized before the budget ran out — NEVER a
  /// solution.
  ConcreteInstance target;
  ChaseStats stats;
  NormalizeStats source_norm_stats;
  NormalizeStats target_norm_stats;
  std::string failure_reason;
  /// The exhausted budget dimension and its description when kAborted.
  ResourceDimension abort_dimension = ResourceDimension::kNone;
  std::string abort_reason;
};

/// Runs the c-chase. `lifted` must be a mapping over concrete (temporal)
/// relations whose dependencies carry the shared temporal variable t —
/// either produced by LiftMapping or hand-built; the temporal variable is
/// taken from Tgd::temporal_var or inferred as the variable occupying the
/// temporal position of every atom. `source` must be complete.
Result<CChaseOutcome> CChase(const ConcreteInstance& source,
                             const Mapping& lifted, Universe* universe,
                             const CChaseOptions& options = {});

/// The temporal variable of a lifted conjunction: the single variable that
/// occupies the temporal (last) position of every atom. InvalidArgument if
/// the atoms disagree or the position holds a non-variable.
Result<VarId> InferTemporalVar(const Conjunction& conj);

}  // namespace tdx

#endif  // TDX_CORE_CCHASE_H_
