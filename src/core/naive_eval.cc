#include "src/core/naive_eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/core/normalize.h"

namespace tdx {

Result<std::vector<Tuple>> NaiveEvaluateConcrete(const UnionQuery& lifted,
                                                 const ConcreteInstance& jc,
                                                 const ChaseLimits& limits) {
  TDX_RETURN_IF_ERROR(lifted.Validate());
  ResourceGuard guard(limits);
  std::vector<Tuple> out;
  for (const ConjunctiveQuery& q : lifted.disjuncts) {
    TDX_FAULT_POINT("naive-eval/normalize");
    // Step 1: normalize Jc w.r.t. the disjunct's body.
    const ConcreteInstance normalized = Normalize(jc, {q.body}, nullptr,
                                                  &guard);
    if (guard.tripped()) return guard.ToStatus();

    // Steps 2-4: the paper replaces each annotated null with a fresh
    // constant c_{N,[s,e)}, evaluates, and drops tuples containing fresh
    // constants. The match engine already compares annotated nulls by
    // identity — exactly how the fresh constants would compare — so the
    // rewrite is a no-op here: evaluate directly, then drop tuples that
    // contain any null.
    std::vector<Tuple> answers =
        DropTuplesWithNulls(Evaluate(q, normalized.facts()));
    out.insert(out.end(), answers.begin(), answers.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Tuple> NaiveEvaluateAbstractAt(const UnionQuery& query,
                                           const AbstractInstance& ja,
                                           TimePoint l, Universe* universe) {
  const Instance snapshot = ja.At(l, universe);
  return DropTuplesWithNulls(Evaluate(query, snapshot));
}

std::vector<std::vector<Tuple>> NaiveEvaluateAbstractAtMany(
    const UnionQuery& query, const AbstractInstance& ja,
    const std::vector<TimePoint>& points, Universe* universe, unsigned jobs) {
  // Materialize sequentially (At() writes projection memos into the shared
  // universe), evaluate in parallel (pure function of the snapshot).
  std::vector<Instance> snapshots;
  snapshots.reserve(points.size());
  for (TimePoint l : points) snapshots.push_back(ja.At(l, universe));
  std::vector<std::vector<Tuple>> results(points.size());
  ParallelFor(jobs, points.size(), [&](std::size_t i) {
    results[i] = DropTuplesWithNulls(Evaluate(query, snapshots[i]));
  });
  return results;
}

std::vector<Tuple> ConcreteAnswersAt(const std::vector<Tuple>& answers,
                                     TimePoint l) {
  std::vector<Tuple> out;
  for (const Tuple& tuple : answers) {
    assert(!tuple.empty() && tuple.back().is_interval());
    if (!tuple.back().interval().Contains(l)) continue;
    out.emplace_back(tuple.begin(), tuple.end() - 1);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace tdx
