// Incremental delta-driven normalization (the fast path of Section 4.2's
// Algorithm 1 across c-chase rounds).
//
// After the first full pass, every later normalize_target call sees an
// instance that is the previous normalized output PLUS facts appended by
// tgd rounds since. NormalizeState exploits that shape:
//
//  * A *watermark* remembers, per relation, how many facts the previous
//    output had (its prefix sizes) and the Instance generation it was
//    recorded at. Insert only appends and does not bump the generation, so
//    "generation unchanged and columns only grew" proves the old prefix IS
//    the previous normalized output, verbatim. Any generation bump (egd
//    in-place rewrite, erase, assignment) invalidates the watermark and the
//    next pass runs the full Algorithm 1 — the generation contract of
//    relational/instance.h is the whole invalidation rule.
//
//  * The homomorphism sweep is seeded only from the delta suffix
//    (ForEachSeeded per atom over [mark, size)), finding exactly the homs
//    that touch at least one new fact. Old facts pulled into a group are
//    expanded transitively (all homs through them, again via single-fact
//    seeds), so every connected component containing a delta fact is
//    discovered in full.
//
//  * Components without any delta fact are provably already normalized: the
//    old prefix has the empty intersection property, so an all-old hom with
//    a nonempty intersection has all-equal intervals, such components carry
//    one shared interval, and fragmenting them is the identity. Their facts
//    are copied straight through. Dirty components are re-fragmented — in
//    parallel across the thread pool when jobs > 1, with cut vectors
//    resolved sequentially first and a deterministic sequential merge, so
//    the output is bit-identical to a full Normalize at any job count.
//
// The output is installed in place (move-assigned into the instance's fact
// store) and the watermark re-recorded, keeping ONE persistent state alive
// across the whole chase loop. Fault site: "normalize/incremental".

#ifndef TDX_CORE_NORMALIZE_INCREMENTAL_H_
#define TDX_CORE_NORMALIZE_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/resource.h"
#include "src/common/status.h"
#include "src/core/normalize.h"
#include "src/core/normalize_detail.h"
#include "src/relational/homomorphism.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// Persistent normalization state for one chase target. Not thread-safe;
/// the parallelism is internal (fragmentation fan-out).
class NormalizeState {
 public:
  /// `jobs` is the fragmentation fan-out width (1 = fully sequential; the
  /// output does not depend on it).
  explicit NormalizeState(unsigned jobs = 1) : jobs_(jobs) {}

  /// Normalizes `*instance` w.r.t. `phis`, replacing its fact store with
  /// the normalized output. Runs the incremental pass when the watermark
  /// matches `*instance`, a full Algorithm 1 pass otherwise. Guard contract
  /// as in normalize.h: on a trip the instance holds a partially normalized
  /// result (garbage), stats->partial is set, and the state invalidates
  /// itself.
  void Normalize(ConcreteInstance* instance,
                 const std::vector<Conjunction>& phis,
                 NormalizeStats* stats = nullptr,
                 ResourceGuard* guard = nullptr);

  /// Drops the watermark; the next pass is a full one. Idempotent.
  void Invalidate();

  /// True when the next Normalize of `instance` would take the incremental
  /// path (watermark bound to it, generation unchanged, columns only grew).
  bool MatchesWatermark(const ConcreteInstance& instance) const;

  /// Serializable image of the watermark for checkpointing. `labels` is the
  /// per-relation component labels flattened in relation order; sum(marks)
  /// == labels.size().
  struct Watermark {
    std::vector<std::uint32_t> marks;
    std::vector<std::uint32_t> labels;
    std::uint32_t num_components = 0;
  };

  /// Exports the watermark when it is currently valid for `facts` (same
  /// binding, same generation — i.e. the old-prefix proof still holds);
  /// nullopt otherwise. Checkpoints taken after an egd rewrite therefore
  /// carry no watermark and resume with a full pass, exactly like the
  /// uninterrupted run.
  std::optional<Watermark> Export(const Instance* facts) const;

  /// Rebinds a checkpointed watermark to a freshly deserialized instance.
  /// Validates shape (marks within column sizes, labels parallel to marks,
  /// label values dense); InvalidArgument on a torn checkpoint.
  Status Restore(const Watermark& wm, const ConcreteInstance& instance);

 private:
  void FullPass(ConcreteInstance* instance,
                const std::vector<Conjunction>& phis, NormalizeStats* stats,
                ResourceGuard* guard);
  void IncrementalPass(ConcreteInstance* instance,
                       const std::vector<Conjunction>& phis,
                       NormalizeStats* stats, ResourceGuard* guard);
  /// Records `*instance` (just installed) as the new watermark. `flat`
  /// holds the output's labels in emission order.
  void Record(const ConcreteInstance& instance,
              const std::vector<std::uint32_t>& flat,
              std::uint32_t num_components);
  /// Mark of relation `r` (0 when the schema grew past the watermark).
  std::uint32_t MarkOf(std::size_t r) const {
    return r < marks_.size() ? marks_[r] : 0;
  }

  // ---- watermark -----------------------------------------------------
  bool valid_ = false;
  const Instance* bound_ = nullptr;
  std::uint64_t generation_ = 0;
  std::vector<std::uint32_t> marks_;
  /// Per-relation component labels of the previous output (positions
  /// [0, marks_[r])); NormalizeLabels::kUngrouped for pass-through facts.
  std::vector<std::vector<std::uint32_t>> comp_of_;
  std::uint32_t num_components_ = 0;

  // ---- reusable machinery --------------------------------------------
  unsigned jobs_;
  /// One finder kept across passes: it catches up on appends and rebuilds
  /// after the install's generation bump (homomorphism.h).
  std::optional<HomomorphismFinder> finder_;
  const Instance* finder_bound_ = nullptr;
  normalize_detail::UnionFind uf_;
  std::vector<char> grouped_;
  std::vector<char> enqueued_;
  std::vector<std::size_t> queue_;
  std::vector<std::size_t> base_;
  std::vector<std::size_t> grouped_ids_;
  std::vector<const std::vector<TimePoint>*> cuts_of_;
  std::vector<std::vector<Interval>> frag_slots_;
  std::vector<std::uint32_t> flat_labels_;
};

}  // namespace tdx

#endif  // TDX_CORE_NORMALIZE_INCREMENTAL_H_
