#include "src/core/temporal_ops.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/temporal/timeline.h"

namespace tdx {

std::string_view TemporalOpName(TemporalOp op) {
  switch (op) {
    case TemporalOp::kOncePast:
      return "once_past";
    case TemporalOp::kAlwaysPast:
      return "always_past";
    case TemporalOp::kOnceFuture:
      return "once_future";
    case TemporalOp::kAlwaysFuture:
      return "always_future";
  }
  return "?";
}

bool TemporalOpFromName(std::string_view name, TemporalOp* out) {
  for (TemporalOp op : {TemporalOp::kOncePast, TemporalOp::kAlwaysPast,
                        TemporalOp::kOnceFuture, TemporalOp::kAlwaysFuture}) {
    if (TemporalOpName(op) == name) {
      *out = op;
      return true;
    }
  }
  return false;
}

std::string ClosureRelationName(std::string_view base, TemporalOp op) {
  std::string out(base);
  out += "__";
  out += TemporalOpName(op);
  return out;
}

namespace {

/// The (possibly empty) interval at which op(R(a)) holds, given the
/// timeline at which R(a) holds.
std::optional<Interval> ClosureSpan(const Timeline& timeline,
                                    TemporalOp op) {
  const std::vector<Interval>& runs = timeline.runs();
  if (runs.empty()) return std::nullopt;
  switch (op) {
    case TemporalOp::kOncePast:
      // Some l' <= l with R true: from the earliest start, forever.
      return Interval::FromStart(runs.front().start());
    case TemporalOp::kAlwaysPast: {
      // Every l' <= l: only while the run that starts at time 0 persists.
      if (runs.front().start() != 0) return std::nullopt;
      return runs.front();
    }
    case TemporalOp::kOnceFuture: {
      // Some l' >= l: until the last run dies (everything if unbounded).
      const Interval& last = runs.back();
      if (last.unbounded()) return Interval::FromStart(0);
      return Interval(0, last.end());
    }
    case TemporalOp::kAlwaysFuture: {
      // Every l' >= l: only inside an unbounded final run.
      const Interval& last = runs.back();
      if (!last.unbounded()) return std::nullopt;
      return last;
    }
  }
  return std::nullopt;
}

}  // namespace

Status MaterializeClosure(const ConcreteInstance& source, RelationId rel,
                          TemporalOp op, RelationId closure_rel,
                          ConcreteInstance* out) {
  const Schema& schema = source.schema();
  const RelationSchema& base = schema.relation(rel);
  const RelationSchema& closure = schema.relation(closure_rel);
  if (!base.temporal || !closure.temporal) {
    return Status::InvalidArgument(
        "temporal closures require temporal relations");
  }
  if (base.data_arity() != closure.data_arity()) {
    return Status::InvalidArgument("closure relation '" + closure.name +
                                   "' must match the data arity of '" +
                                   base.name + "'");
  }

  // Group the base facts by data tuple.
  std::map<std::vector<Value>, std::vector<Interval>> groups;
  for (const FactView fact : source.facts().facts(rel)) {
    for (const Value& v : fact.args()) {
      if (v.is_any_null()) {
        return Status::InvalidArgument(
            "temporal closures are defined on complete relations; '" +
            base.name + "' contains nulls");
      }
    }
    std::vector<Value> data(fact.args().begin(), fact.args().end() - 1);
    groups[std::move(data)].push_back(fact.interval());
  }

  for (auto& [data, ivs] : groups) {
    const std::optional<Interval> span =
        ClosureSpan(Timeline::FromIntervals(std::move(ivs)), op);
    if (!span.has_value()) continue;
    TDX_RETURN_IF_ERROR(out->Add(closure_rel, data, *span));
  }
  return Status::OK();
}

}  // namespace tdx
