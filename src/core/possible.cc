#include "src/core/possible.h"

#include <algorithm>
#include <unordered_map>

#include "src/temporal/snapshot.h"

namespace tdx {

namespace {

/// A substitution over query variables and instance nulls. Bindings resolve
/// transitively: a null may be bound to another null that is later bound to
/// a constant.
class Unifier {
 public:
  explicit Unifier(std::size_t num_vars) : var_values_(num_vars) {}

  /// Resolves a value through the null-binding chain.
  Value Resolve(Value v) const {
    while (v.is_any_null()) {
      auto it = null_bindings_.find(v);
      if (it == null_bindings_.end()) break;
      v = it->second;
    }
    return v;
  }

  bool VarBound(VarId var) const { return var_values_[var].has_value(); }
  Value VarValue(VarId var) const { return Resolve(*var_values_[var]); }

  /// Attempts to unify the query-side term value `q` (a constant, interval,
  /// or previously bound value) with the fact-side value `f`. Records undo
  /// information in `trail`.
  bool Unify(const Value& q, const Value& f,
             std::vector<Value>* trail) {
    const Value a = Resolve(q);
    const Value b = Resolve(f);
    if (a == b) return true;
    if (a.is_any_null()) {
      null_bindings_.emplace(a, b);
      trail->push_back(a);
      return true;
    }
    if (b.is_any_null()) {
      null_bindings_.emplace(b, a);
      trail->push_back(b);
      return true;
    }
    return false;  // two distinct non-nulls
  }

  void BindVar(VarId var, const Value& v) { var_values_[var] = v; }
  void UnbindVar(VarId var) { var_values_[var].reset(); }
  void UndoTo(std::vector<Value>* trail, std::size_t mark) {
    while (trail->size() > mark) {
      null_bindings_.erase(trail->back());
      trail->pop_back();
    }
  }

 private:
  std::vector<std::optional<Value>> var_values_;
  std::unordered_map<Value, Value, ValueHash> null_bindings_;
};

class PossibleSearch {
 public:
  PossibleSearch(const ConjunctiveQuery& query, const Instance& snapshot,
                 std::vector<Tuple>* out)
      : query_(&query), snapshot_(&snapshot), out_(out),
        unifier_(query.body.num_vars) {}

  void Run() { SearchAtom(0); }

 private:
  void SearchAtom(std::size_t index) {
    if (index == query_->body.atoms.size()) {
      Tuple tuple;
      tuple.reserve(query_->head.size());
      for (VarId v : query_->head) {
        // An unbound head variable cannot happen (Validate() requires head
        // vars in the body); a variable bound to an unconstrained null is a
        // wildcard and stays a null.
        tuple.push_back(unifier_.VarValue(v));
      }
      out_->push_back(std::move(tuple));
      return;
    }
    const Atom& atom = query_->body.atoms[index];
    for (const FactView fact : snapshot_->facts(atom.rel)) {
      std::vector<Value> trail;
      std::vector<VarId> bound_vars;
      bool ok = true;
      for (std::size_t i = 0; i < atom.terms.size() && ok; ++i) {
        const Term& term = atom.terms[i];
        const Value& fv = fact.arg(i);
        if (term.is_var()) {
          if (unifier_.VarBound(term.var())) {
            ok = unifier_.Unify(unifier_.VarValue(term.var()), fv, &trail);
          } else {
            unifier_.BindVar(term.var(), fv);
            bound_vars.push_back(term.var());
          }
        } else {
          ok = unifier_.Unify(term.value(), fv, &trail);
        }
      }
      if (ok) SearchAtom(index + 1);
      unifier_.UndoTo(&trail, 0);
      for (VarId v : bound_vars) unifier_.UnbindVar(v);
    }
  }

  const ConjunctiveQuery* query_;
  const Instance* snapshot_;
  std::vector<Tuple>* out_;
  Unifier unifier_;
};

}  // namespace

std::vector<Tuple> PossibleAnswers(const UnionQuery& query,
                                   const Instance& snapshot) {
  std::vector<Tuple> out;
  for (const ConjunctiveQuery& q : query.disjuncts) {
    PossibleSearch(q, snapshot, &out).Run();
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<Tuple>> PossibleAnswersAt(const UnionQuery& query,
                                             const ConcreteInstance& jc,
                                             TimePoint l,
                                             Universe* universe) {
  TDX_ASSIGN_OR_RETURN(Instance snapshot, SnapshotAt(jc, l, universe));
  return PossibleAnswers(query, snapshot);
}

}  // namespace tdx
