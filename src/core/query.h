// Conjunctive queries and unions of conjunctive queries (Section 5).
//
// A non-temporal k-ary query q over the target schema is lifted to q+ over
// the concrete target schema by adding the free temporal variable t to every
// atom (and to the output): answers of q+ are (k+1)-tuples whose last
// component is a time interval.
//
// Evaluation is homomorphism enumeration plus projection onto the head
// variables. Nulls are treated as constants by the match engine (naive
// tables); the naive-evaluation wrapper (naive_eval.h) decides what to drop.

#ifndef TDX_CORE_QUERY_H_
#define TDX_CORE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/source.h"
#include "src/common/status.h"
#include "src/relational/homomorphism.h"

namespace tdx {

/// One conjunctive query: head(x1, ..., xk) :- body. Non-head variables are
/// existentially quantified.
struct ConjunctiveQuery {
  std::string name;
  Conjunction body;
  /// Output variables, in answer-tuple order. Must occur in the body.
  std::vector<VarId> head;
  /// The shared free temporal variable of a lifted query (last head slot).
  std::optional<VarId> temporal_var;
  /// Position of the declaring statement; invalid for hand-built queries.
  SourceSpan span;

  Status Validate() const;
  std::string ToString(const Schema& schema, const Universe& u) const;
};

/// A union of conjunctive queries; all disjuncts must have the same arity.
struct UnionQuery {
  std::string name;
  std::vector<ConjunctiveQuery> disjuncts;

  Status Validate() const;
};

/// Lifts q to q+: every atom's relation is replaced by its concrete twin,
/// the fresh variable t is appended to every atom and to the head.
Result<ConjunctiveQuery> LiftQuery(const ConjunctiveQuery& query,
                                   const Schema& schema);
Result<UnionQuery> LiftUnionQuery(const UnionQuery& query,
                                  const Schema& schema);

/// An answer tuple (values in head order).
using Tuple = std::vector<Value>;

/// Evaluates one CQ on an instance: all homomorphisms of the body,
/// projected to the head, deduplicated, in canonical sorted order. Nulls
/// match as constants (naive-table semantics).
std::vector<Tuple> Evaluate(const ConjunctiveQuery& query,
                            const Instance& instance);

/// Union of Evaluate over the disjuncts, deduplicated, sorted.
std::vector<Tuple> Evaluate(const UnionQuery& query, const Instance& instance);

/// Drops every tuple containing a labeled or annotated null (the "down
/// arrow" of naive evaluation on a single snapshot).
std::vector<Tuple> DropTuplesWithNulls(std::vector<Tuple> tuples);

std::string TupleToString(const Tuple& tuple, const Universe& u);

}  // namespace tdx

#endif  // TDX_CORE_QUERY_H_
