#include "src/core/exchange.h"

namespace tdx {

Result<std::unique_ptr<Exchange>> Exchange::FromProgram(
    std::string_view text) {
  TDX_ASSIGN_OR_RETURN(std::unique_ptr<ParsedProgram> program,
                       ParseProgram(text));
  return FromParsed(std::move(program));
}

Result<std::unique_ptr<Exchange>> Exchange::FromParsed(
    std::unique_ptr<ParsedProgram> program) {
  TDX_ASSIGN_OR_RETURN(
      CChaseOutcome outcome,
      CChase(program->source, program->lifted, &program->universe));
  return std::unique_ptr<Exchange>(
      new Exchange(std::move(program), std::move(outcome)));
}

Result<const UnionQuery*> Exchange::LiftedQuery(std::string_view name) {
  const std::string key(name);
  auto it = lifted_queries_.find(key);
  if (it != lifted_queries_.end()) return &it->second;
  TDX_ASSIGN_OR_RETURN(const UnionQuery* query, program_->FindQuery(name));
  TDX_ASSIGN_OR_RETURN(UnionQuery lifted,
                       LiftUnionQuery(*query, program_->schema));
  auto [inserted, ok] = lifted_queries_.emplace(key, std::move(lifted));
  (void)ok;
  return &inserted->second;
}

Result<std::vector<Tuple>> Exchange::CertainAnswers(
    std::string_view query_name) {
  if (!HasSolution()) {
    return Status::InvalidArgument(
        "no solution exists; certain answers are undefined");
  }
  TDX_ASSIGN_OR_RETURN(const UnionQuery* lifted, LiftedQuery(query_name));
  return NaiveEvaluateConcrete(*lifted, outcome_.target);
}

Result<std::vector<Tuple>> Exchange::AnswersAt(std::string_view query_name,
                                               TimePoint l) {
  TDX_ASSIGN_OR_RETURN(std::vector<Tuple> temporal,
                       CertainAnswers(query_name));
  return ConcreteAnswersAt(temporal, l);
}

Result<AlignmentReport> Exchange::Verify() {
  return VerifyCorollary20(program_->source, program_->mapping,
                           program_->lifted, &program_->universe);
}

}  // namespace tdx
