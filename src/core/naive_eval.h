// Naive evaluation on concrete solutions (Section 5).
//
// Given a lifted union of conjunctive queries q+ and a concrete solution
// Jc, the naive evaluation q+(Jc)! (the paper's down-arrow) is, per
// disjunct q':
//
//   1. normalize Jc w.r.t. q' (so the shared temporal variable can bind);
//   2. replace every interval-annotated null N^[s,e) with a fresh constant
//      c_{N,[s,e)} everywhere it occurs;
//   3. evaluate q' by homomorphism enumeration (t binds to an interval);
//   4. drop answer tuples containing fresh constants.
//
// Theorem 21: [[q+(Jc)!]] = q([[Jc]])!, i.e. the concrete answers,
// re-interpreted per snapshot, coincide with naive evaluation applied
// snapshot-wise to the abstract view. Corollary 22: when Jc is the c-chase
// result, this yields exactly the certain answers.

#ifndef TDX_CORE_NAIVE_EVAL_H_
#define TDX_CORE_NAIVE_EVAL_H_

#include "src/common/resource.h"
#include "src/core/query.h"
#include "src/temporal/abstract_instance.h"
#include "src/temporal/concrete_instance.h"

namespace tdx {

/// q+(Jc)!: naive evaluation of a lifted UCQ over a concrete solution.
/// Answers are (k+1)-tuples ending in an interval value. Deduplicated and
/// sorted; note that answers are NOT coalesced (adjacent intervals with the
/// same data values may both appear, mirroring the paper's definition).
///
/// `limits` bounds the per-disjunct normalization pass and the wall clock;
/// exhaustion returns kResourceExhausted / kDeadlineExceeded (evaluation has
/// no partial-outcome struct, so the abort is a Status). Fault site:
/// "naive-eval/normalize".
Result<std::vector<Tuple>> NaiveEvaluateConcrete(const UnionQuery& lifted,
                                                 const ConcreteInstance& jc,
                                                 const ChaseLimits& limits = {});

/// The answers of q([[.]])! at snapshot l: evaluates the non-temporal UCQ
/// on the materialized snapshot and drops tuples with nulls.
std::vector<Tuple> NaiveEvaluateAbstractAt(const UnionQuery& query,
                                           const AbstractInstance& ja,
                                           TimePoint l, Universe* universe);

/// NaiveEvaluateAbstractAt for a batch of snapshots, with the evaluations
/// fanned out over `jobs` threads. Snapshots materialize sequentially
/// (At() memoizes null projections into `universe`, which is not
/// thread-safe); evaluation is read-only and runs in parallel. results[i]
/// corresponds to points[i] and is independent of `jobs`.
std::vector<std::vector<Tuple>> NaiveEvaluateAbstractAtMany(
    const UnionQuery& query, const AbstractInstance& ja,
    const std::vector<TimePoint>& points, Universe* universe,
    unsigned jobs = 1);

/// [[q+(Jc)!]] at snapshot l: the k-tuples whose interval contains l.
std::vector<Tuple> ConcreteAnswersAt(const std::vector<Tuple>& answers,
                                     TimePoint l);

}  // namespace tdx

#endif  // TDX_CORE_NAIVE_EVAL_H_
