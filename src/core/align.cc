#include "src/core/align.h"

namespace tdx {

Result<AlignmentReport> VerifyAlignment(const ConcreteInstance& jc,
                                        const AbstractInstance& ja) {
  TDX_ASSIGN_OR_RETURN(AbstractInstance jc_sem,
                       AbstractInstance::FromConcrete(jc));
  AlignmentReport report;
  report.outcome_agreed = true;
  report.forward_checked = true;
  report.forward = AbstractHomomorphismExists(jc_sem, ja);
  report.backward = AbstractHomomorphismExists(ja, jc_sem);
  return report;
}

Result<AlignmentReport> VerifyCorollary20(const ConcreteInstance& source,
                                          const Mapping& snapshot_mapping,
                                          const Mapping& lifted_mapping,
                                          Universe* universe) {
  TDX_ASSIGN_OR_RETURN(CChaseOutcome concrete,
                       CChase(source, lifted_mapping, universe));
  TDX_ASSIGN_OR_RETURN(AbstractInstance abstract_source,
                       AbstractInstance::FromConcrete(source));
  TDX_ASSIGN_OR_RETURN(
      AbstractChaseOutcome abstract,
      AbstractChase(abstract_source, snapshot_mapping, universe));

  AlignmentReport report;
  report.outcome_agreed = (concrete.kind == abstract.kind);
  if (!report.outcome_agreed ||
      concrete.kind == ChaseResultKind::kFailure) {
    return report;  // nothing further to compare
  }
  TDX_ASSIGN_OR_RETURN(AlignmentReport inner,
                       VerifyAlignment(concrete.target, abstract.target));
  report.forward_checked = true;
  report.forward = inner.forward;
  report.backward = inner.backward;
  return report;
}

}  // namespace tdx
