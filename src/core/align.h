// Semantic alignment of the concrete chase with the abstract chase
// (Figure 10, Theorem 19, Corollary 20).
//
// The paper's central correctness statement: if Jc = c-chase(Ic, M+) and
// Ja = chase([[Ic]], M), then [[Jc]] ~ Ja (homomorphically equivalent as
// abstract instances). VerifyAlignment checks this on concrete objects;
// VerifyCorollary20 runs both chases itself and checks end-to-end,
// including agreement of success/failure.

#ifndef TDX_CORE_ALIGN_H_
#define TDX_CORE_ALIGN_H_

#include "src/core/cchase.h"
#include "src/temporal/abstract_chase.h"
#include "src/temporal/abstract_hom.h"

namespace tdx {

struct AlignmentReport {
  /// Both chases agreed on success vs failure.
  bool outcome_agreed = false;
  /// [[Jc]] -> Ja exists (meaningful only when both succeeded).
  bool forward = false;
  /// Ja -> [[Jc]] exists.
  bool backward = false;

  bool aligned() const {
    return outcome_agreed && ((forward && backward) || !forward_checked);
  }
  /// False when both chases failed (nothing to compare, but aligned).
  bool forward_checked = false;
};

/// Checks [[jc]] ~ ja.
Result<AlignmentReport> VerifyAlignment(const ConcreteInstance& jc,
                                        const AbstractInstance& ja);

/// End-to-end Corollary 20: runs c-chase(source, lifted) and
/// chase([[source]], snapshot_mapping), compares outcome kinds, and on
/// mutual success checks homomorphic equivalence of the semantics.
Result<AlignmentReport> VerifyCorollary20(const ConcreteInstance& source,
                                          const Mapping& snapshot_mapping,
                                          const Mapping& lifted_mapping,
                                          Universe* universe);

}  // namespace tdx

#endif  // TDX_CORE_ALIGN_H_
