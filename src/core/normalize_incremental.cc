#include "src/core/normalize_incremental.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

using normalize_detail::EmitCopy;
using normalize_detail::IntersectIntervals;

void NormalizeState::Invalidate() {
  valid_ = false;
  bound_ = nullptr;
  marks_.clear();
  comp_of_.clear();
  num_components_ = 0;
}

bool NormalizeState::MatchesWatermark(const ConcreteInstance& instance) const {
  if (!valid_ || bound_ != &instance.facts()) return false;
  const Instance& facts = instance.facts();
  if (generation_ != facts.generation()) return false;
  const std::size_t num_rels = instance.schema().relation_count();
  if (marks_.size() > num_rels) return false;
  for (std::size_t r = 0; r < marks_.size(); ++r) {
    if (facts.facts(static_cast<RelationId>(r)).size() < marks_[r]) {
      return false;
    }
  }
  return true;
}

std::optional<NormalizeState::Watermark> NormalizeState::Export(
    const Instance* facts) const {
  if (!valid_ || bound_ != facts || generation_ != facts->generation()) {
    return std::nullopt;
  }
  Watermark wm;
  wm.marks = marks_;
  for (const std::vector<std::uint32_t>& rel_labels : comp_of_) {
    wm.labels.insert(wm.labels.end(), rel_labels.begin(), rel_labels.end());
  }
  wm.num_components = num_components_;
  return wm;
}

Status NormalizeState::Restore(const Watermark& wm,
                               const ConcreteInstance& instance) {
  const Instance& facts = instance.facts();
  const std::size_t num_rels = instance.schema().relation_count();
  if (wm.marks.size() > num_rels) {
    return Status::InvalidArgument(
        "normalize watermark names more relations than the schema has");
  }
  std::size_t flat = 0;
  for (std::size_t r = 0; r < wm.marks.size(); ++r) {
    if (facts.facts(static_cast<RelationId>(r)).size() < wm.marks[r]) {
      return Status::InvalidArgument(
          "normalize watermark mark exceeds its relation's fact count");
    }
    flat += wm.marks[r];
  }
  if (flat != wm.labels.size()) {
    return Status::InvalidArgument(
        "normalize watermark labels are not parallel to its marks");
  }
  for (const std::uint32_t label : wm.labels) {
    if (label != NormalizeLabels::kUngrouped && label >= wm.num_components) {
      return Status::InvalidArgument(
          "normalize watermark label out of component range");
    }
  }
  marks_ = wm.marks;
  comp_of_.clear();
  comp_of_.reserve(marks_.size());
  std::size_t off = 0;
  for (const std::uint32_t mark : marks_) {
    comp_of_.emplace_back(wm.labels.begin() + off, wm.labels.begin() + off + mark);
    off += mark;
  }
  num_components_ = wm.num_components;
  bound_ = &instance.facts();
  generation_ = facts.generation();
  valid_ = true;
  return Status::OK();
}

void NormalizeState::Record(const ConcreteInstance& instance,
                            const std::vector<std::uint32_t>& flat,
                            std::uint32_t num_components) {
  const Instance& facts = instance.facts();
  const std::size_t num_rels = instance.schema().relation_count();
  marks_.resize(num_rels);
  comp_of_.assign(num_rels, {});
  std::size_t off = 0;
  for (std::size_t r = 0; r < num_rels; ++r) {
    const std::size_t n = facts.facts(static_cast<RelationId>(r)).size();
    marks_[r] = static_cast<std::uint32_t>(n);
    comp_of_[r].assign(flat.begin() + off, flat.begin() + off + n);
    off += n;
  }
  assert(off == flat.size() && "labels must be parallel to the output");
  num_components_ = num_components;
  bound_ = &instance.facts();
  generation_ = facts.generation();
  valid_ = true;
}

void NormalizeState::FullPass(ConcreteInstance* instance,
                              const std::vector<Conjunction>& phis,
                              NormalizeStats* stats, ResourceGuard* guard) {
  NormalizeLabels labels;
  ConcreteInstance out =
      tdx::Normalize(*instance, phis, stats, guard, &labels);
  instance->mutable_facts() = std::move(out.mutable_facts());
  if (guard != nullptr && guard->tripped()) {
    Invalidate();
    return;
  }
  Record(*instance, labels.comp_of, labels.num_components);
}

namespace {

struct IncrementalNormMetrics {
  obs::Counter passes{"normalize.incremental.passes"};
  obs::Counter full_passes{"normalize.incremental.full_passes"};
  obs::Counter delta_facts{"normalize.incremental.delta_facts"};
  obs::Counter dirty_components{"normalize.incremental.dirty_components"};
  obs::Counter reused_components{"normalize.incremental.reused_components"};
  obs::Counter homomorphisms{"normalize.incremental.homomorphisms"};
};

IncrementalNormMetrics& GetIncrementalNormMetrics() {
  static auto* metrics = new IncrementalNormMetrics();
  return *metrics;
}

}  // namespace

void NormalizeState::Normalize(ConcreteInstance* instance,
                               const std::vector<Conjunction>& phis,
                               NormalizeStats* stats, ResourceGuard* guard) {
  TDX_TRACE_SPAN("normalize.incremental");
  // Per-pass metrics need the pass's own stats even when the caller passed
  // none; NormalizeStats is a flat value, so the scratch copy is cheap.
  NormalizeStats scratch;
  NormalizeStats* pass_stats = stats != nullptr ? stats : &scratch;
  IncrementalNormMetrics& metrics = GetIncrementalNormMetrics();
  metrics.passes.Inc();
  if (!MatchesWatermark(*instance)) {
    metrics.full_passes.Inc();
    FullPass(instance, phis, pass_stats, guard);
  } else {
    IncrementalPass(instance, phis, pass_stats, guard);
  }
  // A partial (guard-tripped) pass leaves the stat fields untouched from
  // the caller's previous pass; publishing them would double count.
  if (!pass_stats->partial) {
    metrics.delta_facts.Inc(pass_stats->delta_facts);
    metrics.dirty_components.Inc(pass_stats->dirty_components);
    metrics.reused_components.Inc(pass_stats->reused_components);
    metrics.homomorphisms.Inc(pass_stats->homomorphisms);
  }
}

void NormalizeState::IncrementalPass(ConcreteInstance* instance,
                                     const std::vector<Conjunction>& phis,
                                     NormalizeStats* stats,
                                     ResourceGuard* guard) {
  if (guard != nullptr) {
    guard->ResetFragmentCount();
    guard->PokeFault("normalize/incremental");
    if (guard->tripped()) {
      if (stats != nullptr) stats->partial = true;
      Invalidate();
      return;
    }
  }
  const Instance& facts = instance->facts();
  const std::size_t num_rels = instance->schema().relation_count();
  base_.assign(num_rels, 0);
  std::size_t total = 0;
  std::size_t delta = 0;
  for (RelationId r = 0; r < num_rels; ++r) {
    base_[r] = total;
    const std::size_t n = facts.facts(r).size();
    total += n;
    delta += n - MarkOf(r);
  }
  if (delta == 0) {
    // Untouched since the last pass: the instance IS the previous output,
    // already normalized. Leave it (and the watermark) alone.
    if (stats != nullptr) {
      stats->input_facts = total;
      stats->output_facts = total;
      stats->homomorphisms = 0;
      stats->groups = 0;
      stats->delta_facts = 0;
      stats->dirty_components = 0;
      stats->reused_components = num_components_;
      stats->partial = false;
    }
    return;
  }

  const auto dense_id = [&](FactView f) { return base_[f.relation()] + f.pos(); };
  const auto fact_at = [&](std::size_t id) {
    const auto it = std::upper_bound(base_.begin(), base_.end(), id);
    const RelationId r = static_cast<RelationId>(it - base_.begin() - 1);
    return facts.facts(r)[static_cast<std::uint32_t>(id - base_[r])];
  };
  const auto is_old = [&](FactView f) { return f.pos() < MarkOf(f.relation()); };

  if (finder_bound_ != &facts) {
    finder_.emplace(facts);
    finder_bound_ = &facts;
  }

  // Delta-seeded sweep + transitive expansion. Seeding every atom of every
  // phi* over its relation's delta suffix finds exactly the homs touching a
  // new fact; each OLD fact pulled into a group is then expanded (all homs
  // through it, single-fact seeds), so every component containing a delta
  // fact is discovered in full. Homs found more than once only repeat a
  // union — harmless. All-old homs never reached this way belong to clean
  // components, which provably carry one shared interval (see header).
  uf_.Reset(total);
  grouped_.assign(total, 0);
  enqueued_.assign(total, 0);
  queue_.clear();
  std::size_t hom_count = 0;
  bool deadline_ok = true;
  const auto on_hom = [&](const Binding&, const AtomImage& image) {
    if (guard != nullptr && !guard->CheckDeadline()) {
      deadline_ok = false;
      return false;
    }
    ++hom_count;
    if (!IntersectIntervals(image).has_value()) return true;
    const std::size_t first = dense_id(image.front());
    for (FactView f : image) {
      const std::size_t idx = dense_id(f);
      grouped_[idx] = 1;
      uf_.Union(first, idx);
      if (is_old(f) && enqueued_[idx] == 0) {
        enqueued_[idx] = 1;
        queue_.push_back(idx);
      }
    }
    return true;
  };
  std::vector<Conjunction> stars;
  stars.reserve(phis.size());
  for (const Conjunction& phi : phis) stars.push_back(RenameTemporalApart(phi));
  for (const Conjunction& star : stars) {
    if (!deadline_ok) break;
    for (std::size_t a = 0; a < star.atoms.size() && deadline_ok; ++a) {
      const RelationId rel = star.atoms[a].rel;
      const std::uint32_t begin = MarkOf(rel);
      const std::uint32_t end =
          static_cast<std::uint32_t>(facts.facts(rel).size());
      if (begin >= end) continue;
      finder_->ForEachSeeded(star, a, begin, end, Binding(star.num_vars),
                             on_hom);
    }
  }
  for (std::size_t head = 0; head < queue_.size() && deadline_ok; ++head) {
    const std::size_t id = queue_[head];
    const FactView f = fact_at(id);
    const RelationId rel = f.relation();
    const std::uint32_t pos = f.pos();
    for (const Conjunction& star : stars) {
      if (!deadline_ok) break;
      for (std::size_t a = 0; a < star.atoms.size() && deadline_ok; ++a) {
        if (star.atoms[a].rel != rel) continue;
        finder_->ForEachSeeded(star, a, pos, pos + 1, Binding(star.num_vars),
                               on_hom);
      }
    }
  }
  if (!deadline_ok || (guard != nullptr && guard->tripped())) {
    if (stats != nullptr) stats->partial = true;
    Invalidate();
    return;
  }

  // Cut points per dirty component, then per-fact cut vectors — resolved
  // sequentially because Find path-compresses (the workers below must not
  // mutate the union-find).
  std::map<std::size_t, std::vector<TimePoint>> component_points;
  grouped_ids_.clear();
  for (std::size_t i = 0; i < total; ++i) {
    if (grouped_[i] == 0) continue;
    grouped_ids_.push_back(i);
    std::vector<TimePoint>& pts = component_points[uf_.Find(i)];
    const Interval iv = fact_at(i).interval();
    pts.push_back(iv.start());
    if (!iv.unbounded()) pts.push_back(iv.end());
  }
  for (auto& [root, pts] : component_points) {
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }
  cuts_of_.assign(grouped_ids_.size(), nullptr);
  frag_slots_.resize(std::max(frag_slots_.size(), grouped_ids_.size()));
  for (std::size_t k = 0; k < grouped_ids_.size(); ++k) {
    cuts_of_[k] = &component_points.at(uf_.Find(grouped_ids_[k]));
    frag_slots_[k].clear();
  }

  // Parallel fragmentation: pure per-fact work into private slots; no guard,
  // no labels, no shared mutation. The sequential merge below charges the
  // guard in dense-id order, so the charge/insert sequence — and therefore
  // the output, even under a budget trip — is identical at any job count.
  ParallelFor(jobs_, grouped_ids_.size(), [&](std::size_t k) {
    AppendFragments(fact_at(grouped_ids_[k]).interval(), *cuts_of_[k],
                    &frag_slots_[k]);
  });

  // Deterministic sequential merge. Dirty components take labels [0, d);
  // pass-through facts keep their previous component identity, remapped
  // densely above d. reused = previous components no dirty fact touches.
  const std::uint32_t num_dirty =
      static_cast<std::uint32_t>(component_points.size());
  std::vector<char> prev_touched(num_components_, 0);
  for (const std::size_t id : grouped_ids_) {
    const FactView f = fact_at(id);
    if (!is_old(f)) continue;
    const std::uint32_t prev = comp_of_[f.relation()][f.pos()];
    if (prev != NormalizeLabels::kUngrouped) prev_touched[prev] = 1;
  }
  std::uint32_t touched_count = 0;
  for (const char t : prev_touched) touched_count += t;

  Instance out(&instance->schema());
  flat_labels_.clear();
  std::map<std::size_t, std::uint32_t> dirty_seq;
  std::map<std::uint32_t, std::uint32_t> prev_remap;
  std::size_t next_grouped = 0;
  bool tripped = false;
  for (std::size_t i = 0; i < total && !tripped; ++i) {
    const FactView fact = fact_at(i);
    if (next_grouped < grouped_ids_.size() && grouped_ids_[next_grouped] == i) {
      const std::size_t k = next_grouped++;
      std::vector<Interval>& subs = frag_slots_[k];
      if (subs.empty()) {
        // The pool dropped this slot's task (thread-pool/dispatch fault).
        // The fill is a pure function of immutable inputs, so redoing it
        // inline is sound and keeps the run deterministic.
        AppendFragments(fact.interval(), *cuts_of_[k], &subs);
      }
      const std::uint32_t label =
          dirty_seq.emplace(uf_.Find(i), static_cast<std::uint32_t>(dirty_seq.size()))
              .first->second;
      for (const Interval& sub : subs) {
        if (guard != nullptr && !guard->ChargeFragment()) {
          tripped = true;
          break;
        }
        if (out.Insert(fact.WithInterval(sub))) flat_labels_.push_back(label);
      }
    } else {
      std::uint32_t label = NormalizeLabels::kUngrouped;
      if (is_old(fact)) {
        const std::uint32_t prev = comp_of_[fact.relation()][fact.pos()];
        if (prev != NormalizeLabels::kUngrouped) {
          label = prev_remap
                      .emplace(prev,
                               num_dirty + static_cast<std::uint32_t>(
                                               prev_remap.size()))
                      .first->second;
        }
      }
      if (!EmitCopy(fact, &out, guard, label, &flat_labels_)) tripped = true;
    }
  }

  const std::size_t out_size = out.size();
  // Reused = previous components with no member pulled into a dirty group
  // (computed against the PREVIOUS component count, before Record replaces
  // the watermark).
  const std::uint32_t reused = num_components_ >= touched_count
                                   ? num_components_ - touched_count
                                   : 0;
  instance->mutable_facts() = std::move(out);
  if (tripped || (guard != nullptr && guard->tripped())) {
    if (stats != nullptr) stats->partial = true;
    Invalidate();
    return;
  }
  Record(*instance, flat_labels_,
         num_dirty + static_cast<std::uint32_t>(prev_remap.size()));
  if (stats != nullptr) {
    stats->input_facts = total;
    stats->output_facts = out_size;
    stats->homomorphisms = hom_count;
    stats->groups = num_dirty;
    stats->delta_facts = delta;
    stats->dirty_components = num_dirty;
    stats->reused_components = reused;
    stats->partial = false;
  }
}

}  // namespace tdx
