#include "src/core/cchase.h"

#include <unordered_map>
#include <utility>

#include "src/analysis/termination.h"

namespace tdx {

Result<VarId> InferTemporalVar(const Conjunction& conj) {
  std::optional<VarId> t;
  for (const Atom& atom : conj.atoms) {
    if (atom.terms.empty() || !atom.terms.back().is_var()) {
      return Status::InvalidArgument(
          "lifted atom must end in the temporal variable");
    }
    const VarId v = atom.terms.back().var();
    if (t.has_value() && *t != v) {
      return Status::InvalidArgument(
          "atoms of a lifted dependency must share one temporal variable");
    }
    t = v;
  }
  if (!t.has_value()) {
    return Status::InvalidArgument("empty conjunction has no temporal variable");
  }
  return *t;
}

Result<CChaseOutcome> CChase(const ConcreteInstance& source,
                             const Mapping& lifted, Universe* universe,
                             const CChaseOptions& options) {
  TDX_RETURN_IF_ERROR(source.Validate());
  if (!source.IsComplete()) {
    return Status::InvalidArgument(
        "c-chase requires a complete concrete source instance");
  }

  // Resolve each tgd's temporal variable up front (it annotates the fresh
  // nulls minted when the tgd fires).
  std::unordered_map<const Tgd*, VarId> tgd_temporal;
  auto resolve_temporal = [&](const std::vector<Tgd>& tgds) -> Status {
    for (const Tgd& tgd : tgds) {
      if (tgd.temporal_var.has_value()) {
        tgd_temporal.emplace(&tgd, *tgd.temporal_var);
        continue;
      }
      TDX_ASSIGN_OR_RETURN(VarId t, InferTemporalVar(tgd.body));
      TDX_ASSIGN_OR_RETURN(VarId t_head, InferTemporalVar(tgd.head));
      if (t != t_head) {
        return Status::InvalidArgument(
            "tgd '" + tgd.label +
            "': body and head must share the temporal variable");
      }
      tgd_temporal.emplace(&tgd, t);
    }
    return Status::OK();
  };
  TDX_RETURN_IF_ERROR(resolve_temporal(lifted.st_tgds));
  TDX_RETURN_IF_ERROR(resolve_temporal(lifted.target_tgds));

  // Consult the lifted mapping's termination certificate (or derive one)
  // before doing any work: an uncertified set of target tgds may chase
  // forever.
  TerminationCertificate certificate =
      lifted.certificate.has_value()
          ? *lifted.certificate
          : CertifyTermination(lifted.target_tgds, source.schema());
  if (!certificate.guarantees_termination()) {
    return Status::InvalidArgument(
        "refusing to c-chase: target tgds are not weakly acyclic (cycle " +
        certificate.witness + "); the chase might not terminate");
  }

  CChaseOutcome outcome(ConcreteInstance(&source.schema()),
                        ConcreteInstance(&source.schema()));
  outcome.stats.certificate = std::move(certificate);

  // One guard governs all four phases; any trip unwinds to here and is
  // reported as kAborted with whatever stats accrued.
  ResourceGuard guard(options.limits);
  const auto aborted = [&]() {
    outcome.kind = ChaseResultKind::kAborted;
    outcome.abort_dimension = guard.dimension();
    outcome.abort_reason = guard.reason();
    return outcome;
  };

  // ---- Step 1: normalize the source w.r.t. lhs(Sigma+st) ----------------
  if (!guard.PokeFault("cchase/normalize-source")) return aborted();
  outcome.normalized_source =
      options.use_naive_normalizer
          ? NaiveNormalize(source, &outcome.source_norm_stats, &guard)
          : Normalize(source, lifted.TgdBodies(), &outcome.source_norm_stats,
                      &guard);
  if (guard.tripped()) return aborted();

  // ---- Step 2: s-t tgd c-chase steps -------------------------------------
  // The fresh-null factory annotates with h(t), resolved per dependency.
  const FreshNullFactory fresh = [&](const Tgd& tgd,
                                     const Binding& trigger) -> Value {
    auto it = tgd_temporal.find(&tgd);
    assert(it != tgd_temporal.end());
    const Value& t_value = trigger.Get(it->second);
    assert(t_value.is_interval() &&
           "temporal variable must be bound to an interval");
    return universe->FreshAnnotatedNull(t_value.interval());
  };

  if (!guard.PokeFault("cchase/tgd-phase")) return aborted();
  Instance target(&source.schema());
  TgdPhase(outcome.normalized_source.facts(), &target, lifted.st_tgds, fresh,
           &outcome.stats, &guard);
  if (guard.tripped()) return aborted();

  // ---- Steps 3+4: normalize the target, then fire target tgds and egds to
  // a joint fixpoint. Target-tgd heads inherit their trigger's interval, so
  // fragmentation introduces no new endpoints and the loop converges (the
  // guard is a defensive backstop). The paper's basic setting (no target
  // tgds) passes through this loop exactly once.
  ConcreteInstance concrete_target(std::move(target));
  TDX_RETURN_IF_ERROR(concrete_target.Validate());
  // From here on an abort can preserve the partial target for diagnosis.
  const auto aborted_with_target = [&]() {
    outcome.target = std::move(concrete_target);
    return aborted();
  };
  std::vector<Conjunction> target_phis = lifted.TargetTgdBodies();
  {
    const std::vector<Conjunction> egd_phis = lifted.EgdBodies();
    target_phis.insert(target_phis.end(), egd_phis.begin(), egd_phis.end());
  }
  const auto normalize_target = [&]() {
    concrete_target =
        options.use_naive_normalizer
            ? NaiveNormalize(concrete_target, &outcome.target_norm_stats,
                             &guard)
            : Normalize(concrete_target, target_phis,
                        &outcome.target_norm_stats, &guard);
  };
  // Semi-naive state: one finder over the target's (address-stable) fact
  // store for the whole loop — normalization move-assigns a fresh Instance
  // into the same object, which bumps the generation and invalidates the
  // finder's indexes. The frontier must re-seed with the full instance after
  // every normalization, since fragmentation rewrites existing facts.
  DeltaFrontier frontier;
  HomomorphismFinder round_finder(concrete_target.facts());
  std::size_t rounds = 0;
  while (true) {
    if (!guard.PokeFault("cchase/normalize-target") || !guard.CheckDeadline()) {
      return aborted_with_target();
    }
    normalize_target();
    frontier.Reset();
    if (guard.tripped()) return aborted_with_target();
    bool fired = false;
    while (options.semi_naive
               ? TargetTgdRoundDelta(&concrete_target.mutable_facts(),
                                     lifted.target_tgds, fresh, &outcome.stats,
                                     &guard, &frontier, &round_finder)
               : TargetTgdRound(&concrete_target.mutable_facts(),
                                lifted.target_tgds, fresh, &outcome.stats,
                                &guard)) {
      fired = true;
      if (guard.tripped()) return aborted_with_target();
      if (++rounds > 100000) {
        return Status::Internal(
            "target-tgd c-chase exceeded its iteration budget");
      }
    }
    if (guard.tripped()) return aborted_with_target();
    if (fired) {
      // New facts may need fragmenting before the egds can see them.
      normalize_target();
      if (guard.tripped()) return aborted_with_target();
    }
    if (!guard.PokeFault("cchase/egd-fixpoint")) return aborted_with_target();
    const std::size_t egd_before = outcome.stats.egd_steps;
    outcome.kind = EgdFixpoint(&concrete_target.mutable_facts(), lifted.egds,
                               &outcome.stats, &outcome.failure_reason,
                               &guard);
    if (outcome.kind == ChaseResultKind::kFailure) break;
    if (outcome.kind == ChaseResultKind::kAborted) return aborted_with_target();
    if (!fired && outcome.stats.egd_steps == egd_before) break;
    if (++rounds > 100000) {
      return Status::Internal("c-chase exceeded its iteration budget");
    }
  }
  if (outcome.kind == ChaseResultKind::kSuccess &&
      options.coalesce_result) {
    concrete_target = Coalesce(concrete_target);
  }
  outcome.target = std::move(concrete_target);
  return outcome;
}

}  // namespace tdx
