#include "src/core/cchase.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/analysis/planner.h"
#include "src/analysis/termination.h"
#include "src/common/checkpoint.h"
#include "src/core/normalize_incremental.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace tdx {

Result<VarId> InferTemporalVar(const Conjunction& conj) {
  std::optional<VarId> t;
  for (const Atom& atom : conj.atoms) {
    if (atom.terms.empty() || !atom.terms.back().is_var()) {
      return Status::InvalidArgument(
          "lifted atom must end in the temporal variable");
    }
    const VarId v = atom.terms.back().var();
    if (t.has_value() && *t != v) {
      return Status::InvalidArgument(
          "atoms of a lifted dependency must share one temporal variable");
    }
    t = v;
  }
  if (!t.has_value()) {
    return Status::InvalidArgument("empty conjunction has no temporal variable");
  }
  return *t;
}

namespace {

/// Run-level metrics for the c-chase, published once per run as bulk deltas
/// of the ChaseStats the engine maintains anyway — the chase interior pays
/// nothing per trigger. See docs/INTERNALS.md ("Observability").
struct CChaseMetrics {
  obs::Counter runs{"cchase.runs"};
  obs::Counter aborts{"cchase.aborts"};
  obs::Counter rounds{"cchase.rounds"};
  obs::Counter tgd_triggers{"cchase.tgd_triggers"};
  obs::Counter tgd_fires{"cchase.tgd_fires"};
  obs::Counter egd_steps{"cchase.egd_steps"};
  obs::Counter fresh_nulls{"cchase.fresh_nulls"};
  obs::Counter values_rewritten{"cchase.values_rewritten"};
  obs::Counter skipped_egd_passes{"cchase.skipped_egd_passes"};
  obs::Counter skipped_normalize_passes{"cchase.skipped_normalize_passes"};
  obs::Gauge strata{"cchase.schedule_strata"};
  obs::Histogram run_us{"cchase.run_us"};
};

CChaseMetrics& GetCChaseMetrics() {
  static auto* metrics = new CChaseMetrics();
  return *metrics;
}

/// Publishes the run's stats deltas when the engine returns by any path.
class CChaseRunScope {
 public:
  CChaseRunScope(const ChaseStats* stats, const std::size_t* rounds,
                 const ChaseResultKind* kind)
      : stats_(stats),
        rounds_(rounds),
        kind_(kind),
        entry_(*stats),
        entry_rounds_(*rounds),
        latency_(&GetCChaseMetrics().run_us) {}

  ~CChaseRunScope() {
    CChaseMetrics& m = GetCChaseMetrics();
    m.runs.Inc();
    if (*kind_ == ChaseResultKind::kAborted) m.aborts.Inc();
    m.rounds.Inc(*rounds_ - entry_rounds_);
    m.tgd_triggers.Inc(stats_->tgd_triggers - entry_.tgd_triggers);
    m.tgd_fires.Inc(stats_->tgd_fires - entry_.tgd_fires);
    m.egd_steps.Inc(stats_->egd_steps - entry_.egd_steps);
    m.fresh_nulls.Inc(stats_->fresh_nulls - entry_.fresh_nulls);
    m.values_rewritten.Inc(stats_->values_rewritten -
                           entry_.values_rewritten);
    m.skipped_egd_passes.Inc(stats_->skipped_egd_passes -
                             entry_.skipped_egd_passes);
    m.skipped_normalize_passes.Inc(stats_->skipped_normalize_passes -
                                   entry_.skipped_normalize_passes);
    m.strata.Set(stats_->schedule_strata);
  }

 private:
  const ChaseStats* stats_;
  const std::size_t* rounds_;
  const ChaseResultKind* kind_;
  ChaseStats entry_;
  std::size_t entry_rounds_;
  obs::ScopedLatency latency_;
};

}  // namespace

Result<CChaseOutcome> CChase(const ConcreteInstance& source,
                             const Mapping& lifted, Universe* universe,
                             const CChaseOptions& options) {
  TDX_TRACE_SPAN("cchase.run");
  TDX_RETURN_IF_ERROR(source.Validate());
  if (!source.IsComplete()) {
    return Status::InvalidArgument(
        "c-chase requires a complete concrete source instance");
  }

  // Resolve each tgd's temporal variable up front (it annotates the fresh
  // nulls minted when the tgd fires).
  std::unordered_map<const Tgd*, VarId> tgd_temporal;
  auto resolve_temporal = [&](const std::vector<Tgd>& tgds) -> Status {
    for (const Tgd& tgd : tgds) {
      if (tgd.temporal_var.has_value()) {
        tgd_temporal.emplace(&tgd, *tgd.temporal_var);
        continue;
      }
      TDX_ASSIGN_OR_RETURN(VarId t, InferTemporalVar(tgd.body));
      TDX_ASSIGN_OR_RETURN(VarId t_head, InferTemporalVar(tgd.head));
      if (t != t_head) {
        return Status::InvalidArgument(
            "tgd '" + tgd.label +
            "': body and head must share the temporal variable");
      }
      tgd_temporal.emplace(&tgd, t);
    }
    return Status::OK();
  };
  TDX_RETURN_IF_ERROR(resolve_temporal(lifted.st_tgds));
  TDX_RETURN_IF_ERROR(resolve_temporal(lifted.target_tgds));

  // Consult the lifted mapping's termination certificate (or derive one)
  // before doing any work: an uncertified set of target tgds may chase
  // forever.
  TerminationCertificate certificate =
      lifted.certificate.has_value()
          ? *lifted.certificate
          : CertifyTermination(lifted.target_tgds, source.schema());
  if (!certificate.guarantees_termination()) {
    return Status::InvalidArgument(
        "refusing to c-chase: target tgds are not weakly acyclic (cycle " +
        certificate.witness + "); the chase might not terminate");
  }

  // Checkpoint/resume plumbing. The config fingerprint covers every option
  // that alters the execution trajectory; resource limits are deliberately
  // excluded (raising the budget on resume is the intended recovery path).
  const ChaseCheckpoint* resume = options.resume_from;
  std::string config = "engine=cchase semi-naive=";
  config += options.semi_naive ? '1' : '0';
  config += " naive-normalizer=";
  config += options.use_naive_normalizer ? '1' : '0';
  config += " coalesce=";
  config += options.coalesce_result ? '1' : '0';
  const std::string start_phase =
      resume != nullptr ? resume->phase : std::string("init");
  if (resume != nullptr) {
    if (resume->engine != ChaseCheckpoint::Engine::kCChase) {
      return Status::InvalidArgument(
          "checkpoint was not written by the c-chase engine");
    }
    if (resume->config != config) {
      return Status::InvalidArgument(
          "checkpoint was written under different execution options (\"" +
          resume->config + "\" vs \"" + config + "\")");
    }
    if (start_phase != "init" && start_phase != "st-tgd" &&
        start_phase != "loop-top" && start_phase != "rounds") {
      return Status::InvalidArgument("unknown c-chase checkpoint phase '" +
                                     start_phase + "'");
    }
    if (start_phase != "init" && !resume->normalized_source.has_value()) {
      return Status::InvalidArgument(
          "c-chase checkpoint is missing its normalized source");
    }
    if ((start_phase == "loop-top" || start_phase == "rounds") &&
        !resume->target.has_value()) {
      return Status::InvalidArgument(
          "c-chase checkpoint is missing its target instance");
    }
  }

  CChaseOutcome outcome(ConcreteInstance(&source.schema()),
                        ConcreteInstance(&source.schema()));
  outcome.stats.certificate = std::move(certificate);

  // One guard governs all four phases; any trip unwinds to here and is
  // reported as kAborted with whatever stats accrued. A resumed guard
  // starts with the interrupted run's consumption already charged.
  ResourceGuard guard = resume != nullptr
                            ? ResourceGuard(options.limits, resume->consumed)
                            : ResourceGuard(options.limits);
  if (resume != nullptr) {
    // Stats and the null namespace resume from the safe point; the
    // certificate is derived state and keeps the recomputed value.
    const auto recomputed = outcome.stats.certificate;
    outcome.stats = resume->stats;
    outcome.stats.certificate = recomputed;
    outcome.source_norm_stats = resume->source_norm_stats;
    outcome.target_norm_stats = resume->target_norm_stats;
    universe->RestoreNullState(resume->next_null, resume->null_names);
  }
  const auto aborted = [&]() {
    outcome.kind = ChaseResultKind::kAborted;
    outcome.abort_dimension = guard.dimension();
    outcome.abort_reason = guard.reason();
    return outcome;
  };

  // The schedule steers only provably-no-op skips and parallel trigger
  // collection — the fire order (and every fresh-null id and annotation) is
  // the unscheduled one, so the config fingerprint carries no scheduling
  // fields and checkpoints interchange between scheduled and flat runs.
  std::optional<ChaseSchedule> derived_schedule;
  const ChaseSchedule* schedule = nullptr;
  if (options.scheduled) {
    if (lifted.schedule.has_value()) {
      schedule = &*lifted.schedule;
    } else {
      derived_schedule = PlanChase(lifted, source.schema());
      schedule = &*derived_schedule;
    }
  }
  // Derived state like the certificate: recomputed even on resume.
  outcome.stats.schedule_strata =
      schedule != nullptr ? schedule->stratum_count() : 0;
  TgdRunPlan st_plan;
  TgdRunPlan target_plan;
  std::vector<Egd> live_egds;
  if (schedule != nullptr) {
    st_plan = BuildStTgdRunPlan(lifted.st_tgds, options.jobs);
    target_plan =
        BuildTargetTgdRunPlan(lifted.target_tgds, *schedule, options.jobs);
    live_egds.reserve(schedule->live_egds.size());
    for (std::size_t index : schedule->live_egds) {
      live_egds.push_back(lifted.egds[index]);
    }
  }

  // Loop-top/rounds checkpoints carry the resume round count; earlier-phase
  // checkpoints carry 0, so seeding here is correct for every phase (the
  // loop-top dispatch below re-assigns the same value). Seeding before the
  // metrics scope keeps resumed rounds attributed to the run that ran them.
  std::size_t rounds = resume != nullptr ? resume->rounds : 0;
  // The stats above reflect the resume restore, so the scope's exit-time
  // deltas cover only this run's own work.
  CChaseRunScope run_metrics(&outcome.stats, &rounds, &outcome.kind);
  DeltaFrontier frontier;
  // Incremental target-normalization state (declared before the checkpoint
  // lambda so its watermark can be captured at safe points). Stays invalid
  // forever when the incremental path is off.
  const bool use_incremental =
      !options.use_naive_normalizer && options.incremental_normalize;
  NormalizeState norm_state(options.jobs);
  // Offers a safe point to the checkpointer: everything captured is the
  // state a fresh run holds at the same point, so resume + re-execution is
  // bit-identical to the uninterrupted run.
  const auto offer_checkpoint = [&](bool boundary, const char* phase,
                                    const Instance* target_now) {
    if (options.checkpointer == nullptr) return;
    options.checkpointer->AtSafePoint(boundary, [&]() {
      ChaseCheckpoint ck;
      ck.engine = ChaseCheckpoint::Engine::kCChase;
      ck.config = config;
      ck.phase = phase;
      ck.rounds = rounds;
      ck.stats = outcome.stats;
      ck.source_norm_stats = outcome.source_norm_stats;
      ck.target_norm_stats = outcome.target_norm_stats;
      ck.consumed = guard.Consumed();
      CaptureUniverseNulls(*universe, &ck);
      ck.frontier_full = frontier.full();
      ck.frontier_marks = frontier.marks();
      if (std::string_view(phase) != "init") {
        ck.normalized_source = outcome.normalized_source.facts();
      }
      if (target_now != nullptr) {
        ck.target = *target_now;
        // Export succeeds only while the watermark proves the old prefix
        // (bound to this instance, generation unchanged) — checkpoints
        // taken after an egd rewrite simply carry no watermark.
        if (auto wm = norm_state.Export(target_now)) {
          ck.norm_state_valid = true;
          ck.norm_marks = std::move(wm->marks);
          ck.norm_labels = std::move(wm->labels);
          ck.norm_components = wm->num_components;
        }
      }
      return ck;
    });
  };

  if (guard.tripped()) return aborted();
  if (start_phase == "init") {
    // A boundary checkpoint before any work, so even a kill inside source
    // normalization has something to resume from.
    if (resume == nullptr) offer_checkpoint(true, "init", nullptr);
    // ---- Step 1: normalize the source w.r.t. lhs(Sigma+st) --------------
    if (!guard.PokeFault("cchase/normalize-source")) return aborted();
    TDX_TRACE_SPAN("cchase.normalize_source");
    outcome.normalized_source =
        options.use_naive_normalizer
            ? NaiveNormalize(source, &outcome.source_norm_stats, &guard)
            : Normalize(source, lifted.TgdBodies(), &outcome.source_norm_stats,
                        &guard);
    if (guard.tripped()) return aborted();
    offer_checkpoint(true, "st-tgd", nullptr);
  } else {
    outcome.normalized_source = ConcreteInstance(*resume->normalized_source);
  }

  // ---- Step 2: s-t tgd c-chase steps -------------------------------------
  // The fresh-null factory annotates with h(t), resolved per dependency.
  const FreshNullFactory fresh = [&](const Tgd& tgd,
                                     const Binding& trigger) -> Value {
    auto it = tgd_temporal.find(&tgd);
    assert(it != tgd_temporal.end());
    const Value& t_value = trigger.Get(it->second);
    assert(t_value.is_interval() &&
           "temporal variable must be bound to an interval");
    return universe->FreshAnnotatedNull(t_value.interval());
  };

  Instance target(&source.schema());
  if (start_phase == "init" || start_phase == "st-tgd") {
    if (!guard.PokeFault("cchase/tgd-phase")) return aborted();
    TDX_TRACE_SPAN("cchase.st_tgd");
    if (schedule != nullptr) {
      TgdPhasePlanned(outcome.normalized_source.facts(), &target,
                      lifted.st_tgds, st_plan, fresh, &outcome.stats, &guard);
    } else {
      TgdPhase(outcome.normalized_source.facts(), &target, lifted.st_tgds,
               fresh, &outcome.stats, &guard);
    }
    if (guard.tripped()) return aborted();
  } else {
    target = *resume->target;
  }

  // ---- Steps 3+4: normalize the target, then fire target tgds and egds to
  // a joint fixpoint. Target-tgd heads inherit their trigger's interval, so
  // fragmentation introduces no new endpoints and the loop converges (the
  // guard is a defensive backstop). The paper's basic setting (no target
  // tgds) passes through this loop exactly once.
  ConcreteInstance concrete_target(std::move(target));
  TDX_RETURN_IF_ERROR(concrete_target.Validate());
  // From here on an abort can preserve the partial target for diagnosis.
  const auto aborted_with_target = [&]() {
    outcome.target = std::move(concrete_target);
    return aborted();
  };
  std::vector<Conjunction> target_phis = lifted.TargetTgdBodies();
  {
    const std::vector<Conjunction> egd_phis = lifted.EgdBodies();
    target_phis.insert(target_phis.end(), egd_phis.begin(), egd_phis.end());
  }
  const auto normalize_target = [&]() {
    TDX_TRACE_SPAN("cchase.normalize_pass");
    if (options.use_naive_normalizer) {
      concrete_target =
          NaiveNormalize(concrete_target, &outcome.target_norm_stats, &guard);
    } else if (use_incremental) {
      // The state installs the output in place and re-records its
      // watermark; egd rewrites invalidate it via the generation contract,
      // so the next pass after a merge is automatically a full one.
      norm_state.Normalize(&concrete_target, target_phis,
                           &outcome.target_norm_stats, &guard);
    } else {
      concrete_target = Normalize(concrete_target, target_phis,
                                  &outcome.target_norm_stats, &guard);
    }
  };
  // Restore the loop cursor when resuming into it; otherwise mark the first
  // materialized-target boundary.
  bool mid_rounds = false;
  if (start_phase == "loop-top" || start_phase == "rounds") {
    rounds = resume->rounds;
    if (resume->frontier_full) {
      frontier.Reset();
    } else {
      frontier.AdvanceTo(resume->frontier_marks);
    }
    // A "rounds" checkpoint sits between two fired inner rounds: skip the
    // leading normalization (it ran before those rounds) and continue the
    // inner loop with the fired flag already set.
    mid_rounds = start_phase == "rounds";
    // Rebind the checkpointed normalization watermark to the restored
    // target, so the next normalize_target pass is the same incremental
    // pass the uninterrupted run would have performed. A checkpoint without
    // a watermark (or a non-incremental resume) starts with a full pass —
    // also exactly what the uninterrupted run does in those states.
    if (use_incremental && resume->norm_state_valid) {
      NormalizeState::Watermark wm;
      wm.marks = resume->norm_marks;
      wm.labels = resume->norm_labels;
      wm.num_components = resume->norm_components;
      TDX_RETURN_IF_ERROR(norm_state.Restore(wm, concrete_target));
    }
  } else {
    offer_checkpoint(true, "loop-top", &concrete_target.facts());
  }

  // Semi-naive state: one finder over the target's (address-stable) fact
  // store for the whole loop — normalization move-assigns a fresh Instance
  // into the same object, which bumps the generation and invalidates the
  // finder's indexes. The frontier must re-seed with the full instance after
  // every normalization, since fragmentation rewrites existing facts. The
  // finder is derived state: on resume it is rebuilt over the restored
  // target.
  HomomorphismFinder round_finder(concrete_target.facts(),
                                  &outcome.stats.search);
  const auto run_round = [&]() {
    TDX_TRACE_SPAN("cchase.tgd_round");
    if (schedule != nullptr) {
      return options.semi_naive
                 ? TargetTgdRoundDeltaPlanned(&concrete_target.mutable_facts(),
                                              lifted.target_tgds, target_plan,
                                              fresh, &outcome.stats, &guard,
                                              &frontier, &round_finder)
                 : TargetTgdRoundPlanned(&concrete_target.mutable_facts(),
                                         lifted.target_tgds, target_plan,
                                         fresh, &outcome.stats, &guard);
    }
    return options.semi_naive
               ? TargetTgdRoundDelta(&concrete_target.mutable_facts(),
                                     lifted.target_tgds, fresh, &outcome.stats,
                                     &guard, &frontier, &round_finder)
               : TargetTgdRound(&concrete_target.mutable_facts(),
                                lifted.target_tgds, fresh, &outcome.stats,
                                &guard);
  };
  // Normalization is idempotent, so the loop-top pass is a provable no-op
  // whenever the target is untouched since the last pass: nothing fired and
  // no egd step rewrote a value. The scheduled engine skips exactly those
  // passes (keeping the frontier reset the flat engine performs); the first
  // pass over the freshly materialized target always runs, as does every
  // pass on resume (the clean flag is not checkpointed — re-running the
  // pass is the identity on a clean target, so resumed runs still produce
  // bit-identical results).
  bool normalized_clean = false;
  while (true) {
    if (!mid_rounds) {
      if (schedule != nullptr && normalized_clean) {
        ++outcome.stats.skipped_normalize_passes;
        frontier.Reset();
      } else {
        if (!guard.PokeFault("cchase/normalize-target") ||
            !guard.CheckDeadline()) {
          return aborted_with_target();
        }
        normalize_target();
        normalized_clean = true;
        frontier.Reset();
        if (guard.tripped()) return aborted_with_target();
      }
    }
    bool fired = mid_rounds;
    mid_rounds = false;
    while (run_round()) {
      fired = true;
      normalized_clean = false;
      if (guard.tripped()) return aborted_with_target();
      if (++rounds > 100000) {
        return Status::Internal(
            "target-tgd c-chase exceeded its iteration budget");
      }
      offer_checkpoint(false, "rounds", &concrete_target.facts());
    }
    if (guard.tripped()) return aborted_with_target();
    if (fired) {
      // New facts may need fragmenting before the egds can see them.
      normalize_target();
      normalized_clean = true;
      if (guard.tripped()) return aborted_with_target();
    }
    const std::size_t egd_before = outcome.stats.egd_steps;
    if (schedule != nullptr && !schedule->egd_fixpoint_live()) {
      // Every egd is dead or effect-free: the pass would collect nothing
      // and return success without touching the target. Count the skip
      // only when there was a pass to skip at all.
      outcome.kind = ChaseResultKind::kSuccess;
      if (!lifted.egds.empty()) ++outcome.stats.skipped_egd_passes;
    } else {
      if (!guard.PokeFault("cchase/egd-fixpoint")) {
        return aborted_with_target();
      }
      TDX_TRACE_SPAN("cchase.egd_fixpoint");
      outcome.kind = EgdFixpoint(
          &concrete_target.mutable_facts(),
          schedule != nullptr ? live_egds : lifted.egds, &outcome.stats,
          &outcome.failure_reason, &guard);
    }
    if (outcome.kind == ChaseResultKind::kFailure) break;
    if (outcome.kind == ChaseResultKind::kAborted) return aborted_with_target();
    if (outcome.stats.egd_steps != egd_before) normalized_clean = false;
    if (!fired && outcome.stats.egd_steps == egd_before) break;
    if (++rounds > 100000) {
      return Status::Internal("c-chase exceeded its iteration budget");
    }
    offer_checkpoint(true, "loop-top", &concrete_target.facts());
  }
  if (outcome.kind == ChaseResultKind::kSuccess &&
      options.coalesce_result) {
    TDX_TRACE_SPAN("cchase.coalesce");
    concrete_target = Coalesce(concrete_target);
  }
  outcome.target = std::move(concrete_target);
  return outcome;
}

}  // namespace tdx
