// Internals shared by the full (Algorithm 1) and incremental normalizers.
//
// These helpers define the exact emission behavior both paths must agree on
// for the incremental output to stay bit-identical to a full pass: the
// charge-then-insert order against the resource guard, the duplicate
// handling of the backing Instance (Insert dedups), and the label
// bookkeeping that only records successfully inserted rows.

#ifndef TDX_CORE_NORMALIZE_DETAIL_H_
#define TDX_CORE_NORMALIZE_DETAIL_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "src/common/interval.h"
#include "src/common/resource.h"
#include "src/relational/homomorphism.h"
#include "src/relational/instance.h"

namespace tdx::normalize_detail {

/// Intersection of the time intervals of an atom image, or nullopt when
/// empty. `image` must be non-empty.
inline std::optional<Interval> IntersectIntervals(const AtomImage& image) {
  std::optional<Interval> acc = image.front().interval();
  for (std::size_t i = 1; i < image.size() && acc.has_value(); ++i) {
    acc = acc->Intersect(image[i].interval());
  }
  return acc;
}

/// Union-find over dense fact indices, resettable so the incremental
/// normalizer can reuse its allocation across passes.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { Reset(n); }
  void Reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Fragments `fact` at the interior cuts in `cuts` (sorted ascending,
/// duplicates tolerated) and inserts the fragments into `out`, charging
/// `guard` one unit per fragment before inserting it. Returns false when the
/// guard tripped (the fact may be partially fragmented). When `labels` is
/// non-null, pushes `label` once per fragment the Instance actually kept
/// (Insert dedups, and labels must stay parallel to the stored rows).
inline bool EmitFragments(FactView fact, const std::vector<TimePoint>& cuts,
                          Instance* out, ResourceGuard* guard,
                          std::uint32_t label = 0,
                          std::vector<std::uint32_t>* labels = nullptr) {
  const Interval iv = fact.interval();
  TimePoint cur = iv.start();
  for (auto it = std::upper_bound(cuts.begin(), cuts.end(), cur);
       it != cuts.end() && *it < iv.end(); ++it) {
    if (*it <= cur) continue;
    if (guard != nullptr && !guard->ChargeFragment()) return false;
    const bool inserted = out->Insert(fact.WithInterval(Interval(cur, *it)));
    if (labels != nullptr && inserted) labels->push_back(label);
    cur = *it;
  }
  if (guard != nullptr && !guard->ChargeFragment()) return false;
  const bool inserted = out->Insert(fact.WithInterval(Interval(cur, iv.end())));
  if (labels != nullptr && inserted) labels->push_back(label);
  return true;
}

/// Pass-through emission: one guard charge, one insert, label only on a
/// successful (non-duplicate) insert. Returns false when the guard tripped.
inline bool EmitCopy(FactView fact, Instance* out, ResourceGuard* guard,
                     std::uint32_t label = 0,
                     std::vector<std::uint32_t>* labels = nullptr) {
  if (guard != nullptr && !guard->ChargeFragment()) return false;
  const bool inserted = out->Insert(fact);
  if (labels != nullptr && inserted) labels->push_back(label);
  return true;
}

}  // namespace tdx::normalize_detail

#endif  // TDX_CORE_NORMALIZE_DETAIL_H_
