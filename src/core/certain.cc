#include "src/core/certain.h"

#include <optional>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/temporal/snapshot.h"

namespace tdx {

Result<CertainAnswersResult> CertainAnswers(const UnionQuery& lifted_query,
                                            const ConcreteInstance& source,
                                            const Mapping& lifted_mapping,
                                            Universe* universe,
                                            const ChaseLimits& limits) {
  CChaseOptions options;
  options.limits = limits;
  TDX_ASSIGN_OR_RETURN(CChaseOutcome chase,
                       CChase(source, lifted_mapping, universe, options));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  // A failed OR aborted chase yields no target to evaluate; the kind tells
  // the caller which (kAborted answers are not certain, just absent).
  if (chase.kind != ChaseResultKind::kSuccess) return result;
  TDX_ASSIGN_OR_RETURN(
      result.answers, NaiveEvaluateConcrete(lifted_query, chase.target, limits));
  return result;
}

Result<CertainAnswersResult> CertainAnswersAt(const UnionQuery& query,
                                              const ConcreteInstance& source,
                                              const Mapping& mapping,
                                              TimePoint l, Universe* universe,
                                              const ChaseLimits& limits) {
  TDX_ASSIGN_OR_RETURN(Instance snapshot, SnapshotAt(source, l, universe));
  TDX_ASSIGN_OR_RETURN(ChaseOutcome chase,
                       ChaseSnapshot(snapshot, mapping, universe, limits));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  if (chase.kind != ChaseResultKind::kSuccess) return result;
  result.answers = DropTuplesWithNulls(Evaluate(query, chase.target));
  return result;
}

Result<std::vector<CertainAnswersResult>> CertainAnswersAtMany(
    const UnionQuery& query, const ConcreteInstance& source,
    const Mapping& mapping, const std::vector<TimePoint>& points,
    Universe* universe, unsigned jobs, const ChaseLimits& limits) {
  // Phase 1 (sequential): materialize every snapshot against the shared
  // universe.
  std::vector<Instance> snapshots;
  snapshots.reserve(points.size());
  for (TimePoint l : points) {
    TDX_ASSIGN_OR_RETURN(Instance snapshot, SnapshotAt(source, l, universe));
    snapshots.push_back(std::move(snapshot));
  }
  // Phase 2 (parallel): chase and evaluate each snapshot independently.
  // Scratch universes keep the workers isolated; the answers carry no nulls,
  // so scratch ids never escape, and the per-point results are exactly what
  // the one-point entry computes.
  std::vector<std::optional<Result<CertainAnswersResult>>> slots(
      points.size());
  ParallelFor(jobs, points.size(), [&](std::size_t i) {
    Universe scratch;
    auto run = [&]() -> Result<CertainAnswersResult> {
      TDX_ASSIGN_OR_RETURN(
          ChaseOutcome chase,
          ChaseSnapshot(snapshots[i], mapping, &scratch, limits));
      CertainAnswersResult result;
      result.chase_kind = chase.kind;
      if (chase.kind != ChaseResultKind::kSuccess) return result;
      result.answers = DropTuplesWithNulls(Evaluate(query, chase.target));
      return result;
    };
    slots[i] = run();
  });
  std::vector<CertainAnswersResult> results;
  results.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    TDX_ASSIGN_OR_RETURN(CertainAnswersResult result, std::move(*slots[i]));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace tdx
