#include "src/core/certain.h"

#include "src/temporal/snapshot.h"

namespace tdx {

Result<CertainAnswersResult> CertainAnswers(const UnionQuery& lifted_query,
                                            const ConcreteInstance& source,
                                            const Mapping& lifted_mapping,
                                            Universe* universe) {
  TDX_ASSIGN_OR_RETURN(CChaseOutcome chase,
                       CChase(source, lifted_mapping, universe));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  if (chase.kind == ChaseResultKind::kFailure) return result;
  TDX_ASSIGN_OR_RETURN(result.answers,
                       NaiveEvaluateConcrete(lifted_query, chase.target));
  return result;
}

Result<CertainAnswersResult> CertainAnswersAt(const UnionQuery& query,
                                              const ConcreteInstance& source,
                                              const Mapping& mapping,
                                              TimePoint l,
                                              Universe* universe) {
  TDX_ASSIGN_OR_RETURN(Instance snapshot, SnapshotAt(source, l, universe));
  TDX_ASSIGN_OR_RETURN(ChaseOutcome chase,
                       ChaseSnapshot(snapshot, mapping, universe));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  if (chase.kind == ChaseResultKind::kFailure) return result;
  result.answers = DropTuplesWithNulls(Evaluate(query, chase.target));
  return result;
}

}  // namespace tdx
