#include "src/core/certain.h"

#include "src/temporal/snapshot.h"

namespace tdx {

Result<CertainAnswersResult> CertainAnswers(const UnionQuery& lifted_query,
                                            const ConcreteInstance& source,
                                            const Mapping& lifted_mapping,
                                            Universe* universe,
                                            const ChaseLimits& limits) {
  CChaseOptions options;
  options.limits = limits;
  TDX_ASSIGN_OR_RETURN(CChaseOutcome chase,
                       CChase(source, lifted_mapping, universe, options));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  // A failed OR aborted chase yields no target to evaluate; the kind tells
  // the caller which (kAborted answers are not certain, just absent).
  if (chase.kind != ChaseResultKind::kSuccess) return result;
  TDX_ASSIGN_OR_RETURN(
      result.answers, NaiveEvaluateConcrete(lifted_query, chase.target, limits));
  return result;
}

Result<CertainAnswersResult> CertainAnswersAt(const UnionQuery& query,
                                              const ConcreteInstance& source,
                                              const Mapping& mapping,
                                              TimePoint l, Universe* universe,
                                              const ChaseLimits& limits) {
  TDX_ASSIGN_OR_RETURN(Instance snapshot, SnapshotAt(source, l, universe));
  TDX_ASSIGN_OR_RETURN(ChaseOutcome chase,
                       ChaseSnapshot(snapshot, mapping, universe, limits));
  CertainAnswersResult result;
  result.chase_kind = chase.kind;
  if (chase.kind != ChaseResultKind::kSuccess) return result;
  result.answers = DropTuplesWithNulls(Evaluate(query, chase.target));
  return result;
}

}  // namespace tdx
