#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#ifdef __linux__
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#endif

#include "src/obs/json.h"

namespace tdx::obs {

namespace {

std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Microseconds since the OS created this process, or 0 when the platform
/// has no way to tell. On Linux, starttime (/proc/self/stat field 22, in
/// clock ticks) and CLOCK_BOOTTIME share the since-boot epoch, so their
/// difference is the process age — including fork/exec and dynamic-loader
/// time that no in-process clock read can otherwise observe. starttime has
/// USER_HZ (typically 10ms) granularity and always floors, so the raw
/// difference overestimates by up to one tick; the process's CPU time
/// (nanosecond resolution, and a lower bound on wall age while the process
/// is still single-threaded) caps it, making the result a conservative
/// estimate that never exceeds a tick above the truth.
std::uint64_t ProcessAgeMicros() {
#ifdef __linux__
  std::FILE* stat = std::fopen("/proc/self/stat", "re");
  if (stat == nullptr) return 0;
  char buf[1024];
  const std::size_t len = std::fread(buf, 1, sizeof buf - 1, stat);
  std::fclose(stat);
  buf[len] = '\0';
  // comm (field 2) may itself contain spaces and parens; every later field
  // is space-delimited after the *last* closing paren.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  int field = 2;
  unsigned long long start_ticks = 0;
  for (; *p != '\0'; ++p) {
    if (*p != ' ') continue;
    if (++field == 22) {
      start_ticks = std::strtoull(p + 1, nullptr, 10);
      break;
    }
  }
  if (field != 22) return 0;
  timespec now{};
  if (clock_gettime(CLOCK_BOOTTIME, &now) != 0) return 0;
  const long ticks_per_sec = sysconf(_SC_CLK_TCK);
  if (ticks_per_sec <= 0) return 0;
  const double start_us = static_cast<double>(start_ticks) * 1e6 /
                          static_cast<double>(ticks_per_sec);
  const double now_us = static_cast<double>(now.tv_sec) * 1e6 +
                        static_cast<double>(now.tv_nsec) / 1e3;
  if (now_us <= start_us) return 0;
  double age_us = now_us - start_us;
  timespec cpu{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &cpu) == 0) {
    const double cpu_us = static_cast<double>(cpu.tv_sec) * 1e6 +
                          static_cast<double>(cpu.tv_nsec) / 1e3;
    if (cpu_us > 0 && cpu_us < age_us) age_us = cpu_us;
  }
  return static_cast<std::uint64_t>(age_us);
#else
  return 0;
#endif
}

}  // namespace

/// Per-thread event buffer. The owning thread appends without locking; the
/// global trace mutex guards buffer creation/recycling and the export-time
/// merge (export happens after the run, when worker threads have quiesced —
/// ThreadPool joins its workers before ParallelFor returns).
struct TracerThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Tracer::Impl {
  std::uint64_t generation = 0;  ///< unique per tracer, never reused
  std::uint64_t epoch_us = 0;
  std::vector<TracerThreadBuffer*> buffers;  // owned; guarded by trace mutex
  std::vector<TracerThreadBuffer*> free_buffers;

  ~Impl() {
    for (TracerThreadBuffer* buffer : buffers) delete buffer;
  }
};

namespace {

/// Leaked (FaultRegistry-style) so thread-exit lease destructors can always
/// consult it, even during static teardown. Maps live tracer generations to
/// their Impl; a lease whose generation is gone simply drops its pointer.
struct TraceGlobals {
  std::mutex mu;
  std::unordered_map<std::uint64_t, Tracer::Impl*> live;
  std::uint64_t next_generation = 1;
};

TraceGlobals& Globals() {
  static auto* globals = new TraceGlobals();
  return *globals;
}

/// The calling thread's buffer lease. Keyed by tracer generation — not by
/// Impl pointer — so a destroyed tracer (or a new one reusing its address)
/// can never be confused with the lease's owner. The destructor returns the
/// buffer to its tracer's free list so transient ParallelFor threads recycle
/// buffers instead of growing the set per pool.
struct BufferLease {
  std::uint64_t generation = 0;
  TracerThreadBuffer* buffer = nullptr;

  ~BufferLease() { Release(); }

  void Release() {
    if (buffer == nullptr) return;
    TraceGlobals& globals = Globals();
    std::lock_guard<std::mutex> lock(globals.mu);
    auto it = globals.live.find(generation);
    if (it != globals.live.end()) {
      it->second->free_buffers.push_back(buffer);
    }
    generation = 0;
    buffer = nullptr;
  }
};

thread_local BufferLease t_buffer_lease;

TracerThreadBuffer* BufferFor(Tracer::Impl* impl) {
  if (t_buffer_lease.generation == impl->generation) {
    return t_buffer_lease.buffer;
  }
  // Thread switched tracers (or first use): hand any old buffer back, then
  // claim one from this tracer.
  t_buffer_lease.Release();
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  TracerThreadBuffer* buffer = nullptr;
  if (!impl->free_buffers.empty()) {
    buffer = impl->free_buffers.back();
    impl->free_buffers.pop_back();
  } else {
    buffer = new TracerThreadBuffer();
    buffer->tid = static_cast<std::uint32_t>(impl->buffers.size());
    buffer->events.reserve(256);
    impl->buffers.push_back(buffer);
  }
  t_buffer_lease.generation = impl->generation;
  t_buffer_lease.buffer = buffer;
  return buffer;
}

}  // namespace

std::atomic<Tracer*> Tracer::current_{nullptr};

Tracer::Tracer() : impl_(new Impl()) {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  impl_->generation = globals.next_generation++;
  impl_->epoch_us = SteadyNowMicros();
  globals.live.emplace(impl_->generation, impl_);
}

Tracer::~Tracer() {
  assert(Current() != this && "destroying an installed tracer");
  TraceGlobals& globals = Globals();
  {
    std::lock_guard<std::mutex> lock(globals.mu);
    globals.live.erase(impl_->generation);
  }
  delete impl_;
}

void Tracer::Install() {
  [[maybe_unused]] Tracer* const previous =
      current_.exchange(this, std::memory_order_relaxed);
  assert(previous == nullptr && "a tracer is already installed");
}

void Tracer::MarkProcessStart() {
  const std::uint64_t age_us = ProcessAgeMicros();
  if (age_us == 0) return;
  // Shifting the epoch back keeps every later span's ts positive relative to
  // process creation; unsigned wrap-around (if steady_clock's epoch is not
  // boot) still yields correct deltas in NowMicros.
  impl_->epoch_us -= age_us;
  TraceEvent event;
  event.name = "process.init";
  event.ts_us = 0;
  event.dur_us = age_us;
  event.tid = ThreadId();
  Record(event);
}

void Tracer::Uninstall() {
  current_.store(nullptr, std::memory_order_relaxed);
}

std::uint64_t Tracer::NowMicros() const {
  return SteadyNowMicros() - impl_->epoch_us;
}

std::uint32_t Tracer::ThreadId() {
  return BufferFor(impl_)->tid;
}

void Tracer::Record(const TraceEvent& event) {
  BufferFor(impl_)->events.push_back(event);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(Globals().mu);
  std::size_t count = 0;
  for (const TracerThreadBuffer* buffer : impl_->buffers) {
    count += buffer->events.size();
  }
  return count;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(Globals().mu);
    for (const TracerThreadBuffer* buffer : impl_->buffers) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Sort (ts ascending, dur descending) so enclosing spans precede the
  // spans they contain — viewers build the nesting from this order.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.tid < b.tid;
            });

  Json trace_events = Json::Array();
  for (const TraceEvent& event : events) {
    Json e = Json::Object();
    e.Set("name", Json::Str(event.name));
    e.Set("ph", Json::Str("X"));
    e.Set("ts", Json::Uint(event.ts_us));
    e.Set("dur", Json::Uint(event.dur_us));
    e.Set("pid", Json::Int(1));
    e.Set("tid", Json::Uint(event.tid));
    if (event.arg_name != nullptr) {
      Json args = Json::Object();
      args.Set(event.arg_name, Json::Uint(event.arg_value));
      e.Set("args", std::move(args));
    }
    trace_events.Append(std::move(e));
  }
  Json root = Json::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", Json::Str("ms"));
  return root.Dump();
}

void Tracer::Write(std::ostream& out) const {
  out << ToChromeTraceJson() << '\n';
}

}  // namespace tdx::obs
