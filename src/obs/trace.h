// Scoped tracing in Chrome trace format ("trace event format" JSON, the
// schema chrome://tracing and Perfetto load natively).
//
// A Tracer is installed for one run (tdx_cli --trace-out=FILE installs one
// around the whole command); instrumentation sites open TDX_TRACE_SPAN
// scopes that record *complete* events ("ph":"X") — begin timestamp plus
// duration — so a trace can never contain an orphaned begin/end pair, even
// when a guard trip unwinds an engine mid-phase. Nesting is positional, as
// the format defines it: on one thread, span A encloses span B iff A's
// [ts, ts+dur) interval contains B's (obs_test verifies the engines emit
// strictly nested spans).
//
// Costs: with no tracer installed a span is one relaxed atomic load and a
// branch. With a tracer installed, a span is two steady_clock reads and one
// push_back into a thread-local event buffer (amortized allocation-free;
// buffers grow geometrically and are recycled across pool threads).
//
// Span names must be string literals (static storage duration): events keep
// only the pointer, which is what makes recording allocation-free.

#ifndef TDX_OBS_TRACE_H_
#define TDX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace tdx::obs {

/// One recorded span: a Chrome-trace complete event.
struct TraceEvent {
  const char* name = "";     ///< static string literal
  std::uint64_t ts_us = 0;   ///< microseconds since the tracer's epoch
  std::uint64_t dur_us = 0;  ///< span duration in microseconds
  std::uint32_t tid = 0;     ///< dense per-tracer thread id
  const char* arg_name = nullptr;  ///< optional numeric argument
  std::uint64_t arg_value = 0;
};

/// Collects spans from every thread of one run. Install/uninstall from one
/// thread; recording is safe from any thread while installed.
class Tracer {
 public:
  // Implementation type, public so the file-local buffer machinery can name
  // it; not part of the caller-facing API.
  struct Impl;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this tracer the process-wide current one. At most one tracer is
  /// installed at a time (asserted); spans opened while none is installed
  /// are no-ops.
  void Install();
  /// Anchors the trace epoch at OS process creation and records a
  /// "process.init" span covering fork/exec/loader time up to this call, so
  /// whole-process traces account for startup cost. Call at most once, before
  /// any span opens. No-op on platforms without a process start time.
  void MarkProcessStart();
  /// Detaches; pending spans already opened still record into this tracer.
  void Uninstall();

  /// The installed tracer, or nullptr. One relaxed atomic load.
  static Tracer* Current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction (its trace epoch).
  std::uint64_t NowMicros() const;

  /// Records one complete event (called by TraceSpan's destructor).
  void Record(const TraceEvent& event);

  /// Dense thread id for the calling thread, assigned on first use.
  std::uint32_t ThreadId();

  /// Events recorded so far (merged across threads, sorted by ts).
  std::size_t event_count() const;

  /// Serializes everything recorded so far as a Chrome-trace JSON document:
  /// {"traceEvents":[...], "displayTimeUnit":"ms"}. Events are sorted by
  /// (ts, -dur) so parents precede their children.
  std::string ToChromeTraceJson() const;
  /// Writes ToChromeTraceJson to `out`.
  void Write(std::ostream& out) const;

 private:
  Impl* impl_;  // owned; type-erased so the header stays light

  static std::atomic<Tracer*> current_;
};

/// RAII span. Opens against the tracer installed at construction time, so a
/// span that outlives an Uninstall still records consistently.
class TraceSpan {
 public:
  /// `name` must be a string literal.
  explicit TraceSpan(const char* name)
      : tracer_(Tracer::Current()), name_(name) {
    if (tracer_ != nullptr) start_us_ = tracer_->NowMicros();
  }
  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.ts_us = start_us_;
    event.dur_us = tracer_->NowMicros() - start_us_;
    event.tid = tracer_->ThreadId();
    event.arg_name = arg_name_;
    event.arg_value = arg_value_;
    tracer_->Record(event);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches one numeric argument, rendered into the event's "args" map.
  /// `name` must be a string literal.
  void SetArg(const char* name, std::uint64_t value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t start_us_ = 0;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
};

/// Installs `tracer` for the enclosing scope.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer) : tracer_(tracer) {
    tracer_->Install();
  }
  ~ScopedTracer() { tracer_->Uninstall(); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* tracer_;
};

}  // namespace tdx::obs

/// Token-pasting helper so two spans on one line get distinct names.
#define TDX_TRACE_CONCAT_INNER(a, b) a##b
#define TDX_TRACE_CONCAT(a, b) TDX_TRACE_CONCAT_INNER(a, b)

/// Opens a span for the rest of the enclosing scope. Free when no tracer is
/// installed.
#define TDX_TRACE_SPAN(name) \
  ::tdx::obs::TraceSpan TDX_TRACE_CONCAT(tdx_span_, __LINE__)(name)

#endif  // TDX_OBS_TRACE_H_
