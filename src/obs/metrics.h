// Process-wide metrics for the chase engines: counters, high-watermark
// gauges, and exponential-bucket latency histograms.
//
// Design constraints, in order:
//
//  1. The hot path must not allocate and must not contend. Every thread
//     writes to its own shard — a flat array of relaxed atomics indexed by
//     metric id — so an increment is one thread-local load plus one
//     uncontended fetch_add. The acceptance bar (bench_obs_overhead) is
//     <=2% on BM_TransitiveClosureAblation with metrics enabled but never
//     read.
//  2. Reads must be deterministic. Snapshot() merges shards with
//     commutative reductions only (sum for counters and histogram buckets,
//     max for gauges), mirroring how IndexStats merges across --jobs: the
//     merged value is independent of thread scheduling and shard order.
//     Gauges are therefore *high-watermark* gauges — Set records the max of
//     the observations, the only last-write-free semantics that stays
//     deterministic under parallel writers.
//  3. Engines must not need plumbing changes to be observable. The registry
//     is a process-wide singleton (like FaultRegistry); instrumentation
//     sites hold a static handle and increment through it.
//
// Metric names are dotted paths ("cchase.rounds", "checkpoint.save_us");
// the full registry lives in docs/INTERNALS.md ("Observability"). Handles
// registered with the same name share one metric.
//
// Shards are registry-owned and recycled: a thread that exits returns its
// shard to a free list for the next thread, so repeated ParallelFor pools
// do not grow the shard set without bound.

#ifndef TDX_OBS_METRICS_H_
#define TDX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdx::obs {

/// Exponential histogram geometry: bucket 0 holds the value 0 and bucket
/// b (1 <= b < kHistogramBuckets-1) holds values in [2^(b-1), 2^b); the
/// last bucket is the overflow. 48 buckets cover nanosecond-scale samples
/// up to ~1.6 days.
inline constexpr std::size_t kHistogramBuckets = 48;

/// The bucket a sample lands in (exposed for obs_test's bucket math).
std::size_t HistogramBucketIndex(std::uint64_t value);
/// Exclusive upper bound of bucket `index` (0 -> 1, b -> 2^b); the overflow
/// bucket returns UINT64_MAX.
std::uint64_t HistogramBucketBound(std::size_t index);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One merged metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter total or gauge high-watermark
  // Histogram fields (kind == kHistogram):
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries
};

/// A deterministic point-in-time merge of every shard, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(std::string_view name) const;
  /// Stable-schema JSON: {"version":1,"counters":{...},"gauges":{...},
  /// "histograms":{...}} with keys sorted; see docs/INTERNALS.md.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // Implementation types, public so the registry's file-local state can name
  // them; not part of the caller-facing API.
  struct Shard;
  struct Descriptor;

  /// The process-wide registry.
  static MetricsRegistry& Instance();

  /// Registers (or finds) a metric; ids are dense and stable for the
  /// process lifetime. Mutex-protected — call once per site, not per event.
  std::uint32_t Register(std::string_view name, MetricKind kind);

  /// Collection on/off. Disabled increments are a relaxed load + branch.
  /// Enabled by default.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Hot-path writes. Allocation-free once the calling thread's shard has
  /// seen `id` (the first write per thread may grow the shard).
  void Add(std::uint32_t id, std::uint64_t delta);
  void SetMax(std::uint32_t id, std::uint64_t value);
  void Record(std::uint32_t id, std::uint64_t sample);

  /// Deterministic merge of all shards (live and recycled).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every shard slot (metric registrations survive). For tests and
  /// benchmark setup; not safe concurrently with writers.
  void Reset();

  /// Number of shards ever created (recycled shards count once); test hook.
  std::size_t shard_count() const;

 private:
  MetricsRegistry() = default;

  Shard* ShardSlow(std::uint32_t id);

  std::atomic<bool> enabled_{true};
};

/// A named counter handle. Construction registers (mutex); Inc is the
/// lock-free hot path. Typical use: function-local static.
class Counter {
 public:
  explicit Counter(std::string_view name);
  void Inc(std::uint64_t delta = 1) {
    MetricsRegistry::Instance().Add(id_, delta);
  }

 private:
  std::uint32_t id_;
};

/// A high-watermark gauge: Set keeps the maximum observation.
class Gauge {
 public:
  explicit Gauge(std::string_view name);
  void Set(std::uint64_t value) {
    MetricsRegistry::Instance().SetMax(id_, value);
  }

 private:
  std::uint32_t id_;
};

/// An exponential-bucket histogram.
class Histogram {
 public:
  explicit Histogram(std::string_view name);
  void Record(std::uint64_t sample) {
    MetricsRegistry::Instance().Record(id_, sample);
  }

 private:
  std::uint32_t id_;
};

/// RAII latency sample: records elapsed microseconds into a histogram and
/// optionally bumps a companion counter.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram, Counter* counter = nullptr);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  Counter* counter_;
  std::uint64_t start_ns_;
};

}  // namespace tdx::obs

#endif  // TDX_OBS_METRICS_H_
