// Benchmark report diffing: the library behind tools/tdx_bench_diff, the
// single perf-regression gate CI's bench-smoke job calls.
//
// Two operations over google-benchmark JSON reports:
//
//  * Merge — concatenate the benchmark arrays of several reports under the
//    first report's context (minus its "date", so the committed
//    BENCH_chase.json stays reproducible). This replaces the inline python
//    merge bench-smoke used to carry.
//
//  * Check — evaluate a gates config against a fresh report and (optionally)
//    a baseline report, producing a machine-readable verdict. Three gate
//    families:
//
//      - per-benchmark threshold: every benchmark present in both reports
//        must satisfy fresh_time <= baseline_time * threshold, unless both
//        sit under the noise floor. Meaningful only when both reports come
//        from the same hardware; CI leaves it disabled because the committed
//        baseline was measured elsewhere.
//      - ratio gates: a dimensionless fresh_time(num)/fresh_time(den) ratio
//        with a min and/or max bound, and optionally a drift bound against
//        the same ratio computed from the baseline (ratios transfer across
//        hardware where absolute times do not).
//      - counter gates: a user counter on one benchmark must be >= min —
//        guards that an optimization is actually exercising its fast path,
//        not just fast.
//
// The gates config is itself JSON (see bench/bench_gates.json for the CI
// instance and docs/INTERNALS.md for the schema).

#ifndef TDX_OBS_BENCH_DIFF_H_
#define TDX_OBS_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace tdx::obs {

/// Concatenates `reports` (parsed google-benchmark JSON documents, in
/// order) into one report under the first report's context. The context's
/// "date" member is dropped. Errors if any report lacks a "benchmarks"
/// array or the first lacks a "context" object.
Result<Json> MergeBenchReports(const std::vector<Json>& reports);

/// One evaluated gate.
struct GateCheck {
  std::string gate;    ///< gate name from the config (or benchmark name)
  std::string kind;    ///< "per_benchmark" | "ratio" | "ratio_drift" |
                       ///< "counter"
  bool pass = false;
  double actual = 0;   ///< the measured value the gate bounded
  double limit = 0;    ///< the bound it was held to
  std::string detail;  ///< one human-readable line
};

/// The full verdict of one check run.
struct GateReport {
  bool pass = true;
  std::vector<GateCheck> checks;

  /// Stable-schema JSON verdict:
  /// {"pass":bool,"checks":[{"gate","kind","pass","actual","limit",
  /// "detail"},...]}.
  std::string ToJson() const;
  /// One line per gate ("PASS <detail>" / "FAIL <detail>") plus a summary.
  std::string ToText() const;
};

/// Evaluates `gates` against `fresh`, using `baseline` for per-benchmark
/// thresholds and ratio drift bounds (pass nullptr to skip both). Errors on
/// malformed reports/config or on a gate referencing a benchmark or counter
/// missing from `fresh`; a gate failure is NOT an error — it is a failed
/// check in the returned report.
Result<GateReport> CheckBenchGates(const Json& fresh, const Json* baseline,
                                   const Json& gates);

}  // namespace tdx::obs

#endif  // TDX_OBS_BENCH_DIFF_H_
