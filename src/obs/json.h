// A minimal JSON document model with a parser and a writer.
//
// The observability layer speaks JSON at its edges: the Tracer emits
// Chrome-trace-format files, the MetricsRegistry emits a stable-schema
// snapshot, and tools/tdx_bench_diff consumes google-benchmark output. None
// of those needs a streaming or schema-validating library — they need a
// small document tree that round-trips faithfully and fails loudly on
// malformed input. Object member order is preserved (google-benchmark files
// are diffed textually in CI, so re-emitting must not shuffle keys).
//
// Numbers are stored as double plus the original literal text; integers up
// to 2^53 round-trip exactly, which covers every counter the benchmarks and
// metrics emit.

#ifndef TDX_OBS_JSON_H_
#define TDX_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace tdx::obs {

class Json;

using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;

/// One JSON value. A tagged union kept deliberately simple: arrays and
/// objects own their children by value.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Number(double value);
  /// Number carrying its exact source literal (the parser uses this so
  /// re-emitted documents match their input byte for byte).
  static Json NumberLiteral(double value, std::string literal);
  /// Integer-valued number emitted without a decimal point.
  static Json Int(std::int64_t value);
  static Json Uint(std::uint64_t value);
  static Json Str(std::string value) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  const std::string& as_string() const { return string_; }

  JsonArray& items() { return items_; }
  const JsonArray& items() const { return items_; }
  std::vector<JsonMember>& members() { return members_; }
  const std::vector<JsonMember>& members() const { return members_; }

  /// Appends to an array value.
  void Append(Json value) { items_.push_back(std::move(value)); }
  /// Sets (or replaces) an object member, preserving first-set order.
  void Set(std::string_view key, Json value);
  /// Member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Serializes the value. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact one-line form.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string number_text_;  ///< exact literal, when built from one
  std::string string_;
  JsonArray items_;
  std::vector<JsonMember> members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Errors carry a byte offset.
Result<Json> ParseJson(std::string_view text);

}  // namespace tdx::obs

#endif  // TDX_OBS_JSON_H_
