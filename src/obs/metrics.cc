#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "src/obs/json.h"

namespace tdx::obs {

std::size_t HistogramBucketIndex(std::uint64_t value) {
  if (value == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(width, kHistogramBuckets - 1);
}

std::uint64_t HistogramBucketBound(std::size_t index) {
  if (index == 0) return 1;
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return std::uint64_t{1} << index;
}

// ---------------------------------------------------------------------------
// Registry internals
// ---------------------------------------------------------------------------

namespace {

/// Slots per histogram in a shard: buckets plus the running count and sum.
constexpr std::size_t kHistogramSlots = kHistogramBuckets + 2;

}  // namespace

/// Per-thread storage: one flat atomic array per metric family. The owning
/// thread is the only writer; Snapshot readers race benignly through the
/// relaxed atomics. Slot layout is fixed per metric id: counters and gauges
/// take one slot, histograms take kHistogramSlots consecutive slots starting
/// at their base offset.
struct MetricsRegistry::Shard {
  /// Grown (by the owner, under the registry mutex) to cover the registered
  /// metric space; never shrunk. unique_ptr swap keeps old readers valid
  /// only under the mutex, which Snapshot holds.
  std::vector<std::atomic<std::uint64_t>*> blocks;  // one block per metric
  std::vector<std::size_t> block_sizes;
  bool in_use = false;

  ~Shard() {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      delete[] blocks[i];
    }
  }
};

struct MetricsRegistry::Descriptor {
  std::string name;
  MetricKind kind;
};

namespace {

struct RegistryState {
  mutable std::mutex mu;
  std::vector<MetricsRegistry::Shard*> shards;  // owned, never freed
  std::vector<MetricsRegistry::Shard*> free_shards;
  std::unordered_map<std::string, std::uint32_t> by_name;
};

// Leaked singletons, FaultRegistry-style: metrics must outlive every static
// destructor that might still record.
RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

std::vector<MetricsRegistry::Descriptor>& Descriptors() {
  static auto* descriptors = new std::vector<MetricsRegistry::Descriptor>();
  return *descriptors;
}

/// Releases the thread's shard back to the free list on thread exit.
struct ShardLease {
  MetricsRegistry::Shard* shard = nullptr;
  ~ShardLease() {
    if (shard == nullptr) return;
    RegistryState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    shard->in_use = false;
    state.free_shards.push_back(shard);
  }
};

thread_local ShardLease t_lease;

std::size_t SlotsFor(MetricKind kind) {
  return kind == MetricKind::kHistogram ? kHistogramSlots : 1;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Instance() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

std::uint32_t MetricsRegistry::Register(std::string_view name,
                                        MetricKind kind) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto [it, inserted] = state.by_name.emplace(
      std::string(name), static_cast<std::uint32_t>(Descriptors().size()));
  if (inserted) {
    Descriptors().push_back(Descriptor{std::string(name), kind});
  }
  return it->second;
}

MetricsRegistry::Shard* MetricsRegistry::ShardSlow(std::uint32_t id) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  Shard* shard = t_lease.shard;
  if (shard == nullptr) {
    if (!state.free_shards.empty()) {
      shard = state.free_shards.back();
      state.free_shards.pop_back();
    } else {
      shard = new Shard();
      state.shards.push_back(shard);
    }
    shard->in_use = true;
    t_lease.shard = shard;
  }
  // Extend block coverage up to and including `id`. Blocks are allocated
  // zeroed; existing blocks (and their slot values) are untouched, so the
  // grow is invisible to concurrent Snapshot readers beyond the new zeros.
  while (shard->blocks.size() <= id) {
    const auto next = static_cast<std::uint32_t>(shard->blocks.size());
    const std::size_t slots = SlotsFor(Descriptors()[next].kind);
    auto* block = new std::atomic<std::uint64_t>[slots];
    for (std::size_t i = 0; i < slots; ++i) {
      block[i].store(0, std::memory_order_relaxed);
    }
    shard->blocks.push_back(block);
    shard->block_sizes.push_back(slots);
  }
  return shard;
}

void MetricsRegistry::Add(std::uint32_t id, std::uint64_t delta) {
  if (!enabled()) return;
  Shard* shard = t_lease.shard;
  if (shard == nullptr || shard->blocks.size() <= id) shard = ShardSlow(id);
  shard->blocks[id][0].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::SetMax(std::uint32_t id, std::uint64_t value) {
  if (!enabled()) return;
  Shard* shard = t_lease.shard;
  if (shard == nullptr || shard->blocks.size() <= id) shard = ShardSlow(id);
  std::atomic<std::uint64_t>& slot = shard->blocks[id][0];
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::Record(std::uint32_t id, std::uint64_t sample) {
  if (!enabled()) return;
  Shard* shard = t_lease.shard;
  if (shard == nullptr || shard->blocks.size() <= id) shard = ShardSlow(id);
  std::atomic<std::uint64_t>* block = shard->blocks[id];
  block[HistogramBucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  block[kHistogramBuckets].fetch_add(1, std::memory_order_relaxed);      // count
  block[kHistogramBuckets + 1].fetch_add(sample, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const std::vector<Descriptor>& descriptors = Descriptors();
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(descriptors.size());
  for (std::uint32_t id = 0; id < descriptors.size(); ++id) {
    MetricValue value;
    value.name = descriptors[id].name;
    value.kind = descriptors[id].kind;
    if (value.kind == MetricKind::kHistogram) {
      value.buckets.assign(kHistogramBuckets, 0);
    }
    for (const Shard* shard : state.shards) {
      if (shard->blocks.size() <= id) continue;
      const std::atomic<std::uint64_t>* block = shard->blocks[id];
      switch (value.kind) {
        case MetricKind::kCounter:
          value.value += block[0].load(std::memory_order_relaxed);
          break;
        case MetricKind::kGauge:
          value.value = std::max(value.value,
                                 block[0].load(std::memory_order_relaxed));
          break;
        case MetricKind::kHistogram:
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            value.buckets[b] += block[b].load(std::memory_order_relaxed);
          }
          value.count +=
              block[kHistogramBuckets].load(std::memory_order_relaxed);
          value.sum +=
              block[kHistogramBuckets + 1].load(std::memory_order_relaxed);
          break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void MetricsRegistry::Reset() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (Shard* shard : state.shards) {
    for (std::size_t i = 0; i < shard->blocks.size(); ++i) {
      for (std::size_t s = 0; s < shard->block_sizes[i]; ++s) {
        shard->blocks[i][s].store(0, std::memory_order_relaxed);
      }
    }
  }
}

std::size_t MetricsRegistry::shard_count() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.shards.size();
}

// ---------------------------------------------------------------------------
// Snapshot rendering
// ---------------------------------------------------------------------------

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  Json counters = Json::Object();
  Json gauges = Json::Object();
  Json histograms = Json::Object();
  for (const MetricValue& m : metrics) {  // already name-sorted
    switch (m.kind) {
      case MetricKind::kCounter:
        counters.Set(m.name, Json::Uint(m.value));
        break;
      case MetricKind::kGauge:
        gauges.Set(m.name, Json::Uint(m.value));
        break;
      case MetricKind::kHistogram: {
        Json h = Json::Object();
        h.Set("count", Json::Uint(m.count));
        h.Set("sum", Json::Uint(m.sum));
        Json buckets = Json::Array();
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (m.buckets[b] == 0) continue;  // sparse: zero buckets omitted
          Json bucket = Json::Object();
          bucket.Set("le", Json::Uint(HistogramBucketBound(b)));
          bucket.Set("count", Json::Uint(m.buckets[b]));
          buckets.Append(std::move(bucket));
        }
        h.Set("buckets", std::move(buckets));
        histograms.Set(m.name, std::move(h));
        break;
      }
    }
  }
  Json root = Json::Object();
  root.Set("version", Json::Int(1));
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root.Dump(2);
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

Counter::Counter(std::string_view name)
    : id_(MetricsRegistry::Instance().Register(name, MetricKind::kCounter)) {}

Gauge::Gauge(std::string_view name)
    : id_(MetricsRegistry::Instance().Register(name, MetricKind::kGauge)) {}

Histogram::Histogram(std::string_view name)
    : id_(MetricsRegistry::Instance().Register(name, MetricKind::kHistogram)) {
}

namespace {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedLatency::ScopedLatency(Histogram* histogram, Counter* counter)
    : histogram_(histogram), counter_(counter), start_ns_(NowNanos()) {}

ScopedLatency::~ScopedLatency() {
  const std::uint64_t elapsed_us = (NowNanos() - start_ns_) / 1000;
  histogram_->Record(elapsed_us);
  if (counter_ != nullptr) counter_->Inc();
}

}  // namespace tdx::obs
