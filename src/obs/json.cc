#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tdx::obs {

Json Json::Number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::NumberLiteral(double value, std::string literal) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  j.number_text_ = std::move(literal);
  return j;
}

Json Json::Int(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(value);
  j.number_text_ = std::to_string(value);
  return j;
}

Json Json::Uint(std::uint64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(value);
  j.number_text_ = std::to_string(value);
  return j;
}

void Json::Set(std::string_view key, Json value) {
  for (JsonMember& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const JsonMember& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

void EscapeInto(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NewlineIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber: {
      if (!number_text_.empty()) {
        out->append(number_text_);
        return;
      }
      if (std::floor(number_) == number_ && std::abs(number_) < 9.0e15) {
        out->append(std::to_string(static_cast<std::int64_t>(number_)));
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", number_);
      out->append(buf);
      return;
    }
    case Kind::kString:
      EscapeInto(string_, out);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        EscapeInto(members_[i].first, out);
        out->append(indent > 0 ? ": " : ":");
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    TDX_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      TDX_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view literal = text_.substr(start, pos_ - start);
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(literal.data(), literal.data() + literal.size(), value);
    if (ec != std::errc() || ptr != literal.data() + literal.size()) {
      pos_ = start;
      return Error("invalid number literal '" + std::string(literal) + "'");
    }
    // Keep the literal so integers re-emit exactly as they were written.
    return Json::NumberLiteral(value, std::string(literal));
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by anything we parse; pass them through as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray(int depth) {
    Consume('[');
    Json array = Json::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      TDX_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipSpace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseObject(int depth) {
    Consume('{');
    Json object = Json::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      TDX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      TDX_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace tdx::obs
