#include "src/obs/bench_diff.h"

#include <cstdio>
#include <unordered_map>

namespace tdx::obs {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", value);
  return buf;
}

/// Indexes a report's benchmark entries by name into `out`. Repeated names
/// keep the first occurrence (google-benchmark emits one entry per benchmark
/// in non-repetition mode, which is all we produce). Out-parameter rather
/// than Result<map>: gcc 12's -Wfree-nonheap-object misfires on a variant
/// holding an unordered_map.
Status IndexBenchmarks(const Json& report, const char* which,
                       std::unordered_map<std::string, const Json*>* out) {
  const Json* benchmarks = report.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument(std::string(which) +
                                   " report has no \"benchmarks\" array");
  }
  for (const Json& entry : benchmarks->items()) {
    const Json* name = entry.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument(std::string(which) +
                                     " report has a benchmark with no name");
    }
    out->emplace(name->as_string(), &entry);
  }
  return Status::OK();
}

/// A benchmark's real_time, normalized to nanoseconds.
Result<double> RealTimeNs(const Json& entry, const std::string& name) {
  const Json* real_time = entry.Find("real_time");
  if (real_time == nullptr || !real_time->is_number()) {
    return Status::InvalidArgument("benchmark '" + name +
                                   "' has no real_time");
  }
  double scale = 1.0;
  if (const Json* unit = entry.Find("time_unit");
      unit != nullptr && unit->is_string()) {
    const std::string& u = unit->as_string();
    if (u == "us") {
      scale = 1e3;
    } else if (u == "ms") {
      scale = 1e6;
    } else if (u == "s") {
      scale = 1e9;
    }
  }
  return real_time->as_number() * scale;
}

Result<double> LookupTimeNs(
    const std::unordered_map<std::string, const Json*>& by_name,
    const std::string& name, const char* which) {
  auto it = by_name.find(name);
  if (it == by_name.end()) {
    return Status::NotFound("benchmark '" + name + "' missing from " +
                            which + " report");
  }
  return RealTimeNs(*it->second, name);
}

Result<double> ConfigNumber(const Json& gate, const char* key) {
  const Json* value = gate.Find(key);
  if (value == nullptr || !value->is_number()) {
    return Status::InvalidArgument(std::string("gate is missing numeric \"") +
                                   key + "\"");
  }
  return value->as_number();
}

Result<std::string> ConfigString(const Json& gate, const char* key) {
  const Json* value = gate.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument(std::string("gate is missing string \"") +
                                   key + "\"");
  }
  return value->as_string();
}

}  // namespace

Result<Json> MergeBenchReports(const std::vector<Json>& reports) {
  if (reports.empty()) {
    return Status::InvalidArgument("merge needs at least one report");
  }
  const Json* context = reports[0].Find("context");
  if (context == nullptr || !context->is_object()) {
    return Status::InvalidArgument(
        "first report has no \"context\" object");
  }
  Json merged_context = Json::Object();
  for (const JsonMember& member : context->members()) {
    if (member.first == "date") continue;  // keep the merge reproducible
    merged_context.Set(member.first, member.second);
  }
  Json merged_benchmarks = Json::Array();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Json* benchmarks = reports[i].Find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array()) {
      return Status::InvalidArgument("report " + std::to_string(i) +
                                     " has no \"benchmarks\" array");
    }
    for (const Json& entry : benchmarks->items()) {
      merged_benchmarks.Append(entry);
    }
  }
  Json merged = Json::Object();
  merged.Set("context", std::move(merged_context));
  merged.Set("benchmarks", std::move(merged_benchmarks));
  return merged;
}

Result<GateReport> CheckBenchGates(const Json& fresh, const Json* baseline,
                                   const Json& gates) {
  std::unordered_map<std::string, const Json*> fresh_by_name;
  TDX_RETURN_IF_ERROR(IndexBenchmarks(fresh, "fresh", &fresh_by_name));
  std::unordered_map<std::string, const Json*> baseline_by_name;
  if (baseline != nullptr) {
    TDX_RETURN_IF_ERROR(
        IndexBenchmarks(*baseline, "baseline", &baseline_by_name));
  }

  GateReport report;
  auto add = [&report](GateCheck check) {
    report.pass = report.pass && check.pass;
    report.checks.push_back(std::move(check));
  };

  // --- per-benchmark thresholds -------------------------------------------
  if (const Json* per = gates.Find("per_benchmark");
      per != nullptr && per->is_object()) {
    const Json* enabled = per->Find("enabled");
    if (enabled != nullptr && enabled->is_bool() && enabled->as_bool()) {
      if (baseline == nullptr) {
        return Status::InvalidArgument(
            "per_benchmark gates need a baseline report");
      }
      TDX_ASSIGN_OR_RETURN(const double threshold,
                           ConfigNumber(*per, "threshold"));
      double noise_floor_ns = 0;
      if (const Json* floor = per->Find("noise_floor_ns");
          floor != nullptr && floor->is_number()) {
        noise_floor_ns = floor->as_number();
      }
      for (const auto& [name, entry] : baseline_by_name) {
        auto it = fresh_by_name.find(name);
        if (it == fresh_by_name.end()) continue;  // renamed/removed: not a gate
        TDX_ASSIGN_OR_RETURN(const double base_ns, RealTimeNs(*entry, name));
        TDX_ASSIGN_OR_RETURN(const double fresh_ns,
                             RealTimeNs(*it->second, name));
        if (base_ns < noise_floor_ns && fresh_ns < noise_floor_ns) continue;
        GateCheck check;
        check.gate = name;
        check.kind = "per_benchmark";
        check.actual = fresh_ns;
        check.limit = base_ns * threshold;
        check.pass = fresh_ns <= check.limit;
        check.detail = name + ": " + FormatDouble(fresh_ns) + "ns vs " +
                       FormatDouble(base_ns) + "ns baseline (threshold " +
                       FormatDouble(threshold) + "x)";
        add(std::move(check));
      }
    }
  }

  // --- ratio gates --------------------------------------------------------
  if (const Json* ratio_gates = gates.Find("ratio_gates");
      ratio_gates != nullptr && ratio_gates->is_array()) {
    for (const Json& gate : ratio_gates->items()) {
      TDX_ASSIGN_OR_RETURN(const std::string name, ConfigString(gate, "name"));
      TDX_ASSIGN_OR_RETURN(const std::string num, ConfigString(gate, "num"));
      TDX_ASSIGN_OR_RETURN(const std::string den, ConfigString(gate, "den"));
      TDX_ASSIGN_OR_RETURN(const double num_ns,
                           LookupTimeNs(fresh_by_name, num, "fresh"));
      TDX_ASSIGN_OR_RETURN(const double den_ns,
                           LookupTimeNs(fresh_by_name, den, "fresh"));
      if (den_ns <= 0) {
        return Status::InvalidArgument("ratio gate '" + name +
                                       "': denominator time is zero");
      }
      const double ratio = num_ns / den_ns;

      if (const Json* min = gate.Find("min");
          min != nullptr && min->is_number()) {
        GateCheck check;
        check.gate = name;
        check.kind = "ratio";
        check.actual = ratio;
        check.limit = min->as_number();
        check.pass = ratio >= check.limit;
        check.detail = name + ": " + num + "/" + den + " = " +
                       FormatDouble(ratio) + "x (min " +
                       FormatDouble(check.limit) + "x)";
        add(std::move(check));
      }
      if (const Json* max = gate.Find("max");
          max != nullptr && max->is_number()) {
        GateCheck check;
        check.gate = name;
        check.kind = "ratio";
        check.actual = ratio;
        check.limit = max->as_number();
        check.pass = ratio <= check.limit;
        check.detail = name + ": " + num + "/" + den + " = " +
                       FormatDouble(ratio) + "x (max " +
                       FormatDouble(check.limit) + "x)";
        add(std::move(check));
      }

      // Drift against the baseline's value of the same ratio. Soft on a
      // missing baseline benchmark (a gate added in the same change as its
      // benchmarks has no committed history yet).
      const Json* drift = gate.Find("baseline_drift");
      if (drift != nullptr && drift->is_number() && baseline != nullptr) {
        auto base_num = LookupTimeNs(baseline_by_name, num, "baseline");
        auto base_den = LookupTimeNs(baseline_by_name, den, "baseline");
        if (base_num.ok() && base_den.ok() && base_den.value() > 0) {
          const double base_ratio = base_num.value() / base_den.value();
          GateCheck check;
          check.gate = name;
          check.kind = "ratio_drift";
          check.actual = ratio;
          check.limit = base_ratio / drift->as_number();
          check.pass = ratio * drift->as_number() >= base_ratio;
          check.detail = name + ": fresh " + FormatDouble(ratio) +
                         "x vs committed " + FormatDouble(base_ratio) +
                         "x (allowed drift " +
                         FormatDouble(drift->as_number()) + "x)";
          add(std::move(check));
        }
      }
    }
  }

  // --- counter gates ------------------------------------------------------
  if (const Json* counter_gates = gates.Find("counter_gates");
      counter_gates != nullptr && counter_gates->is_array()) {
    for (const Json& gate : counter_gates->items()) {
      TDX_ASSIGN_OR_RETURN(const std::string name, ConfigString(gate, "name"));
      TDX_ASSIGN_OR_RETURN(const std::string benchmark,
                           ConfigString(gate, "benchmark"));
      TDX_ASSIGN_OR_RETURN(const std::string counter,
                           ConfigString(gate, "counter"));
      TDX_ASSIGN_OR_RETURN(const double min, ConfigNumber(gate, "min"));
      auto it = fresh_by_name.find(benchmark);
      if (it == fresh_by_name.end()) {
        return Status::NotFound("counter gate '" + name + "': benchmark '" +
                                benchmark + "' missing from fresh report");
      }
      const Json* value = it->second->Find(counter);
      if (value == nullptr || !value->is_number()) {
        return Status::NotFound("counter gate '" + name + "': counter '" +
                                counter + "' missing from " + benchmark);
      }
      GateCheck check;
      check.gate = name;
      check.kind = "counter";
      check.actual = value->as_number();
      check.limit = min;
      check.pass = check.actual >= min;
      check.detail = name + ": " + benchmark + "." + counter + " = " +
                     FormatDouble(check.actual) + " (min " +
                     FormatDouble(min) + ")";
      add(std::move(check));
    }
  }

  return report;
}

std::string GateReport::ToJson() const {
  Json checks_json = Json::Array();
  for (const GateCheck& check : checks) {
    Json c = Json::Object();
    c.Set("gate", Json::Str(check.gate));
    c.Set("kind", Json::Str(check.kind));
    c.Set("pass", Json::Bool(check.pass));
    c.Set("actual", Json::Number(check.actual));
    c.Set("limit", Json::Number(check.limit));
    c.Set("detail", Json::Str(check.detail));
    checks_json.Append(std::move(c));
  }
  Json root = Json::Object();
  root.Set("pass", Json::Bool(pass));
  root.Set("checks", std::move(checks_json));
  return root.Dump(2);
}

std::string GateReport::ToText() const {
  std::string out;
  std::size_t failed = 0;
  for (const GateCheck& check : checks) {
    out += check.pass ? "PASS  " : "FAIL  ";
    out += check.detail;
    out += '\n';
    if (!check.pass) ++failed;
  }
  out += pass ? "OK: " : "REGRESSION: ";
  out += std::to_string(checks.size() - failed) + "/" +
         std::to_string(checks.size()) + " gates passed\n";
  return out;
}

}  // namespace tdx::obs
