// Experiment C-CORE (Section 7 future work; Fagin-Kolaitis-Popa cores).
//
// Measures core computation on chase results and on deliberately redundant
// instances:
//  * chase results of the employment mapping are (near-)cores already —
//    the bench quantifies the cost of *certifying* that (one full
//    endomorphism search that finds nothing to fold);
//  * instances padded with k redundant null rows per complete row measure
//    the folding path (k rounds of proper endomorphisms).

#include <benchmark/benchmark.h>

#include "src/core/cchase.h"
#include "src/core/solution_core.h"
#include "src/gen/workload.h"

namespace {

void BM_CoreOfChaseResult(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 60;
  cfg.seed = 17;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  auto chase = tdx::CChase(w->source, w->lifted, &w->universe);
  if (!chase.ok() || chase->kind == tdx::ChaseResultKind::kFailure) {
    state.SkipWithError("chase failed");
    return;
  }
  tdx::CoreStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance core =
        tdx::ComputeConcreteCore(chase->target, &stats);
    benchmark::DoNotOptimize(core);
  }
  state.counters["facts"] = static_cast<double>(chase->target.size());
  state.counters["removed"] = static_cast<double>(stats.facts_removed);
}
BENCHMARK(BM_CoreOfChaseResult)->Arg(10)->Arg(25)->Arg(50);

void BM_CoreOfRedundantInstance(benchmark::State& state) {
  // One complete row plus k redundant null rows per entity.
  const std::int64_t redundancy = state.range(0);
  tdx::Universe u;
  tdx::Schema schema;
  const tdx::RelationId emp = *schema.AddRelation(
      "Emp", {"name", "company", "salary"}, tdx::SchemaRole::kTarget);
  tdx::Instance instance(&schema);
  for (int person = 0; person < 20; ++person) {
    const tdx::Value name = u.Constant("p" + std::to_string(person));
    const tdx::Value company = u.Constant("c" + std::to_string(person % 3));
    instance.Insert(emp, {name, company, u.Constant("10k")});
    for (std::int64_t k = 0; k < redundancy; ++k) {
      instance.Insert(emp, {name, company, u.FreshNull()});
    }
  }
  tdx::CoreStats stats;
  for (auto _ : state) {
    tdx::Instance core = tdx::ComputeCore(instance, &stats);
    benchmark::DoNotOptimize(core);
  }
  state.counters["in_facts"] = static_cast<double>(instance.size());
  state.counters["removed"] = static_cast<double>(stats.facts_removed);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
}
BENCHMARK(BM_CoreOfRedundantInstance)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
