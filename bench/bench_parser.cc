// Experiment C-PARSE (tooling substrate): text-format throughput.
//
// Round-trips generated workloads through the serializer and parser:
// large fact lists dominate real program files, so the sweep scales the
// source instance. Counters report program size and facts/second.

#include <benchmark/benchmark.h>

#include "src/gen/workload.h"
#include "src/parser/parser.h"
#include "src/parser/serialize.h"

namespace {

std::string MakeProgramText(std::int64_t people) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.horizon = 100;
  cfg.seed = 23;
  auto w = tdx::MakeEmploymentWorkload(cfg);

  // Assemble a full program around the generated facts.
  std::string text = tdx::SerializeSchema(w->schema);
  text += tdx::SerializeMapping(w->mapping, w->schema, w->universe);
  auto facts = tdx::SerializeInstanceFacts(w->source, w->universe);
  text += *facts;
  return text;
}

void BM_ParseProgram(benchmark::State& state) {
  const std::string text = MakeProgramText(state.range(0));
  std::size_t facts = 0;
  for (auto _ : state) {
    auto program = tdx::ParseProgram(text);
    benchmark::DoNotOptimize(program);
    if (program.ok()) facts = (*program)->source.size();
  }
  state.counters["bytes"] = static_cast<double>(text.size());
  state.counters["facts"] = static_cast<double>(facts);
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseProgram)->Arg(50)->Arg(200)->Arg(800);

void BM_SerializeProgram(benchmark::State& state) {
  const std::string text = MakeProgramText(state.range(0));
  auto program = tdx::ParseProgram(text);
  if (!program.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    auto out = tdx::SerializeProgram(**program);
    benchmark::DoNotOptimize(out);
  }
  state.counters["bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_SerializeProgram)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
