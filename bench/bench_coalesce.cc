// Experiment C-COAL (Section 2): coalescing throughput and compaction.
//
// Coalescing canonicalizes concrete instances (unique coalesced
// representative per abstract database). The bench sweeps fragmentation
// degrees: instances whose facts were split into k adjacent pieces each
// must coalesce back to the original size, at sort-and-sweep cost.

#include <benchmark/benchmark.h>

#include "src/gen/workload.h"
#include "src/temporal/coalesce.h"

namespace {

/// Fragments every bounded fact of the employment workload into unit
/// intervals (maximum fragmentation), yielding a heavily redundant input.
tdx::ConcreteInstance Fragmentize(const tdx::Workload& w) {
  tdx::ConcreteInstance out(&w.schema);
  w.source.facts().ForEach([&](tdx::FactView fact) {
    const tdx::Interval iv = fact.interval();
    if (iv.unbounded() || *iv.length() <= 1) {
      out.mutable_facts().Insert(fact);
      return;
    }
    for (tdx::TimePoint t = iv.start(); t < iv.end(); ++t) {
      out.mutable_facts().Insert(fact.WithInterval(tdx::Interval(t, t + 1)));
    }
  });
  return out;
}

void BM_CoalesceFragmented(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 100;
  cfg.seed = 3;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  const tdx::ConcreteInstance fragmented = Fragmentize(*w);
  std::size_t out_size = 0;
  for (auto _ : state) {
    tdx::ConcreteInstance compact = tdx::Coalesce(fragmented);
    benchmark::DoNotOptimize(compact);
    out_size = compact.size();
  }
  state.counters["in_facts"] = static_cast<double>(fragmented.size());
  state.counters["out_facts"] = static_cast<double>(out_size);
  state.counters["compaction"] = static_cast<double>(fragmented.size()) /
                                 static_cast<double>(out_size);
}
BENCHMARK(BM_CoalesceFragmented)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_CoalesceAlreadyCoalesced(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 100;
  cfg.seed = 3;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  const tdx::ConcreteInstance once = tdx::Coalesce(w->source);
  for (auto _ : state) {
    tdx::ConcreteInstance again = tdx::Coalesce(once);
    benchmark::DoNotOptimize(again);
  }
  state.counters["facts"] = static_cast<double>(once.size());
}
BENCHMARK(BM_CoalesceAlreadyCoalesced)->Arg(50)->Arg(200);

}  // namespace
