// Experiment C-COAL (Section 2): coalescing throughput and compaction.
//
// Coalescing canonicalizes concrete instances (unique coalesced
// representative per abstract database). The bench sweeps fragmentation
// degrees: instances whose facts were split into k adjacent pieces each
// must coalesce back to the original size, at sort-and-sweep cost.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/gen/workload.h"
#include "src/temporal/coalesce.h"

namespace {

/// The former node-based implementation, kept inline as the baseline the
/// sort-based sweep in src/temporal/coalesce.cc is measured against: one
/// map node (key vector + interval vector) per distinct data tuple.
tdx::ConcreteInstance CoalesceWithMap(const tdx::ConcreteInstance& instance) {
  using Key = std::pair<tdx::RelationId, std::vector<tdx::Value>>;
  std::map<Key, std::pair<tdx::Fact, std::vector<tdx::Interval>>> groups;
  instance.facts().ForEach([&](tdx::FactView fact) {
    Key key;
    key.first = fact.relation();
    for (std::size_t i = 0; i + 1 < fact.arity(); ++i) {
      const tdx::Value& v = fact.arg(i);
      key.second.push_back(
          v.is_annotated_null() ? tdx::Value::Null(v.null_id()) : v);
    }
    auto it = groups.emplace(std::move(key),
                             std::make_pair(fact.ToFact(),
                                            std::vector<tdx::Interval>{}))
                  .first;
    it->second.second.push_back(fact.interval());
  });
  tdx::ConcreteInstance out(&instance.schema());
  for (auto& [key, group] : groups) {
    std::vector<tdx::Interval>& intervals = group.second;
    std::sort(intervals.begin(), intervals.end());
    tdx::Interval run = intervals.front();
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (run.Mergeable(intervals[i])) {
        run = run.MergeWith(intervals[i]);
      } else {
        out.mutable_facts().Insert(group.first.WithInterval(run));
        run = intervals[i];
      }
    }
    out.mutable_facts().Insert(group.first.WithInterval(run));
  }
  return out;
}

/// Fragments every bounded fact of the employment workload into unit
/// intervals (maximum fragmentation), yielding a heavily redundant input.
tdx::ConcreteInstance Fragmentize(const tdx::Workload& w) {
  tdx::ConcreteInstance out(&w.schema);
  w.source.facts().ForEach([&](tdx::FactView fact) {
    const tdx::Interval iv = fact.interval();
    if (iv.unbounded() || *iv.length() <= 1) {
      out.mutable_facts().Insert(fact);
      return;
    }
    for (tdx::TimePoint t = iv.start(); t < iv.end(); ++t) {
      out.mutable_facts().Insert(fact.WithInterval(tdx::Interval(t, t + 1)));
    }
  });
  return out;
}

void BM_CoalesceFragmented(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 100;
  cfg.seed = 3;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  const tdx::ConcreteInstance fragmented = Fragmentize(*w);
  std::size_t out_size = 0;
  for (auto _ : state) {
    tdx::ConcreteInstance compact = tdx::Coalesce(fragmented);
    benchmark::DoNotOptimize(compact);
    out_size = compact.size();
  }
  state.counters["in_facts"] = static_cast<double>(fragmented.size());
  state.counters["out_facts"] = static_cast<double>(out_size);
  state.counters["compaction"] = static_cast<double>(fragmented.size()) /
                                 static_cast<double>(out_size);
}
BENCHMARK(BM_CoalesceFragmented)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_CoalesceFragmentedMapBaseline(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 100;
  cfg.seed = 3;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  const tdx::ConcreteInstance fragmented = Fragmentize(*w);
  std::size_t out_size = 0;
  for (auto _ : state) {
    tdx::ConcreteInstance compact = CoalesceWithMap(fragmented);
    benchmark::DoNotOptimize(compact);
    out_size = compact.size();
  }
  state.counters["in_facts"] = static_cast<double>(fragmented.size());
  state.counters["out_facts"] = static_cast<double>(out_size);
}
BENCHMARK(BM_CoalesceFragmentedMapBaseline)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_CoalesceAlreadyCoalesced(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 100;
  cfg.seed = 3;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  const tdx::ConcreteInstance once = tdx::Coalesce(w->source);
  for (auto _ : state) {
    tdx::ConcreteInstance again = tdx::Coalesce(once);
    benchmark::DoNotOptimize(again);
  }
  state.counters["facts"] = static_cast<double>(once.size());
}
BENCHMARK(BM_CoalesceAlreadyCoalesced)->Arg(50)->Arg(200);

}  // namespace
