// Experiment C-CHASE (Section 4.3): concrete chase scaling.
//
// Sweeps the c-chase over employment workloads along three axes:
//  * instance size (people),
//  * timeline density (horizon; denser histories -> more fragmentation),
//  * the share of unknown salaries (more nulls -> more egd merges).
//
// Also ablates the normalizer choice inside the chase (Algorithm 1 vs the
// naive endpoint normalizer, CChaseOptions::use_naive_normalizer): the
// naive normalizer saves grouping time but inflates the instance the tgds
// then iterate over — the paper's trade-off, measured.

#include <benchmark/benchmark.h>

#include <optional>

#include "src/core/cchase.h"
#include "src/gen/workload.h"

namespace {

std::unique_ptr<tdx::Workload> MakeInstance(std::int64_t people,
                                            tdx::TimePoint horizon,
                                            double known) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.num_companies = 10;
  cfg.avg_jobs = 3;
  cfg.horizon = horizon;
  cfg.salary_known_fraction = known;
  cfg.seed = 13;
  return tdx::MakeEmploymentWorkload(cfg);
}

void ReportChase(benchmark::State& state, const tdx::CChaseOutcome& outcome,
                 std::size_t source_facts) {
  state.counters["src_facts"] = static_cast<double>(source_facts);
  state.counters["norm_facts"] =
      static_cast<double>(outcome.source_norm_stats.output_facts);
  state.counters["tgt_facts"] = static_cast<double>(outcome.target.size());
  state.counters["tgd_fires"] = static_cast<double>(outcome.stats.tgd_fires);
  state.counters["egd_steps"] = static_cast<double>(outcome.stats.egd_steps);
  state.counters["nulls"] = static_cast<double>(outcome.stats.fresh_nulls);
}

void BM_CChaseBySize(benchmark::State& state) {
  auto w = MakeInstance(state.range(0), 100, 0.7);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    // Each iteration needs its own universe evolution; reuse is fine since
    // fresh nulls only grow the id space.
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  ReportChase(state, *last, w->source.size());
}
BENCHMARK(BM_CChaseBySize)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_CChaseByDensity(benchmark::State& state) {
  // Same population, increasingly fine-grained histories.
  auto w = MakeInstance(100, static_cast<tdx::TimePoint>(state.range(0)), 0.7);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  ReportChase(state, *last, w->source.size());
}
BENCHMARK(BM_CChaseByDensity)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_CChaseByUnknownShare(benchmark::State& state) {
  // range(0) = percent of employment spans with known salary.
  auto w = MakeInstance(100, 100, static_cast<double>(state.range(0)) / 100.0);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  ReportChase(state, *last, w->source.size());
}
BENCHMARK(BM_CChaseByUnknownShare)->Arg(0)->Arg(30)->Arg(70)->Arg(100);

void BM_CChaseNormalizerAblation(benchmark::State& state) {
  // Small instance: the naive normalizer inflates the fact count so much
  // that larger sizes make this ablation dominate the whole harness.
  auto w = MakeInstance(30, 100, 0.7);
  tdx::CChaseOptions opts;
  opts.use_naive_normalizer = (state.range(0) == 1);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, opts);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.SetLabel(opts.use_naive_normalizer ? "naive normalizer"
                                           : "Algorithm 1");
  ReportChase(state, *last, w->source.size());
}
BENCHMARK(BM_CChaseNormalizerAblation)->Arg(0)->Arg(1);

void BM_CChaseSemiNaiveAblation(benchmark::State& state) {
  // Trigger-enumeration strategy for the target-tgd rounds. The employment
  // mapping has egds but no target tgds, so this ablation measures the
  // OVERHEAD of the delta-frontier bookkeeping on an egd-heavy workload:
  // both arms must produce identical stats and near-identical times. (The
  // speedup side of the ablation lives in bench_target_tgd's rounds-heavy
  // cascade.) Arg: 1 = semi-naive, 0 = naive.
  auto w = MakeInstance(100, 100, 0.5);
  tdx::CChaseOptions opts;
  opts.semi_naive = (state.range(0) == 1);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, opts);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.SetLabel(opts.semi_naive ? "semi-naive" : "naive rounds");
  state.counters["tgd_triggers"] =
      static_cast<double>(last->stats.tgd_triggers);
  ReportChase(state, *last, w->source.size());
}
BENCHMARK(BM_CChaseSemiNaiveAblation)->Arg(1)->Arg(0);

}  // namespace
