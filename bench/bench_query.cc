// Experiment C-QA (Section 5): naive evaluation throughput on concrete
// solutions, and the cost split between per-disjunct normalization and
// match enumeration.
//
// certain(q, [[Ic]], M) = [[q+(Jc)!]] (Corollary 22): answering over the
// compact concrete solution replaces an unbounded number of per-snapshot
// evaluations; BM_SnapshotEval shows what one snapshot costs for contrast.

#include <benchmark/benchmark.h>

#include "src/core/cchase.h"
#include "src/core/naive_eval.h"
#include "src/gen/workload.h"

namespace {

struct Setup {
  std::unique_ptr<tdx::Workload> workload;
  std::unique_ptr<tdx::ConcreteInstance> solution;
  tdx::UnionQuery lifted;
};

Setup MakeSetup(std::int64_t people) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.num_companies = 10;
  cfg.avg_jobs = 3;
  cfg.horizon = 100;
  cfg.salary_known_fraction = 0.7;
  cfg.seed = 5;
  Setup setup{tdx::MakeEmploymentWorkload(cfg), nullptr, {}};
  auto outcome = tdx::CChase(setup.workload->source, setup.workload->lifted,
                             &setup.workload->universe);
  setup.solution = std::make_unique<tdx::ConcreteInstance>(
      std::move(outcome).value().target);

  const tdx::RelationId emp = *setup.workload->schema.Find("Emp");
  tdx::ConjunctiveQuery q;
  q.name = "salaries";
  tdx::Atom atom;
  atom.rel = emp;
  atom.terms = {tdx::Term::Var(0), tdx::Term::Var(1), tdx::Term::Var(2)};
  q.body.atoms = {atom};
  q.body.num_vars = 3;
  q.head = {0, 2};
  tdx::UnionQuery uq;
  uq.name = q.name;
  uq.disjuncts = {q};
  setup.lifted =
      std::move(tdx::LiftUnionQuery(uq, setup.workload->schema)).value();
  return setup;
}

void BM_NaiveEvalConcrete(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  std::size_t answers = 0;
  for (auto _ : state) {
    auto result = tdx::NaiveEvaluateConcrete(setup.lifted, *setup.solution);
    benchmark::DoNotOptimize(result);
    if (result.ok()) answers = result->size();
  }
  state.counters["solution_facts"] =
      static_cast<double>(setup.solution->size());
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NaiveEvalConcrete)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

// A two-atom join query: P(n, c, s) at time t joined with itself on the
// company — stresses normalization w.r.t. the query and the match engine.
void BM_NaiveEvalJoinQuery(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  const tdx::RelationId emp = *setup.workload->schema.Find("Emp");
  tdx::ConjunctiveQuery q;
  q.name = "colleagues";
  tdx::Atom a1, a2;
  a1.rel = emp;
  a1.terms = {tdx::Term::Var(0), tdx::Term::Var(1), tdx::Term::Var(2)};
  a2.rel = emp;
  a2.terms = {tdx::Term::Var(3), tdx::Term::Var(1), tdx::Term::Var(4)};
  q.body.atoms = {a1, a2};
  q.body.num_vars = 5;
  q.head = {0, 3};
  tdx::UnionQuery uq;
  uq.name = q.name;
  uq.disjuncts = {q};
  auto lifted = tdx::LiftUnionQuery(uq, setup.workload->schema);

  std::size_t answers = 0;
  for (auto _ : state) {
    auto result = tdx::NaiveEvaluateConcrete(*lifted, *setup.solution);
    benchmark::DoNotOptimize(result);
    if (result.ok()) answers = result->size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NaiveEvalJoinQuery)->Arg(25)->Arg(50)->Arg(100);

// Contrast: evaluating the non-temporal query on ONE materialized snapshot.
void BM_SnapshotEval(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  auto ja = tdx::AbstractInstance::FromConcrete(*setup.solution);
  if (!ja.ok()) {
    state.SkipWithError("FromConcrete failed");
    return;
  }
  tdx::UnionQuery snapshot_query;
  snapshot_query.name = "salaries";
  snapshot_query.disjuncts = {setup.lifted.disjuncts[0]};
  // De-lift: rebuild the non-temporal query.
  const tdx::RelationId emp = *setup.workload->schema.Find("Emp");
  tdx::ConjunctiveQuery q;
  tdx::Atom atom;
  atom.rel = emp;
  atom.terms = {tdx::Term::Var(0), tdx::Term::Var(1), tdx::Term::Var(2)};
  q.body.atoms = {atom};
  q.body.num_vars = 3;
  q.head = {0, 2};
  snapshot_query.disjuncts = {q};

  for (auto _ : state) {
    auto answers = tdx::NaiveEvaluateAbstractAt(snapshot_query, *ja, 50,
                                                &setup.workload->universe);
    benchmark::DoNotOptimize(answers);
  }
}
BENCHMARK(BM_SnapshotEval)->Arg(100);

}  // namespace
