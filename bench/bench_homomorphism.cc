// Experiment C-HOM (substrate): the homomorphism (conjunctive-match)
// engine that underlies chase triggers, normalization grouping, and query
// evaluation. Sweeps selectivity regimes:
//
//  * indexed point lookups (all positions bound),
//  * star joins through one shared variable,
//  * unselective cross products (the engine's worst case),
//  * existence checks that stop at the first match.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/relational/homomorphism.h"

namespace {

struct Fixture {
  tdx::Universe u;
  tdx::Schema schema;
  std::unique_ptr<tdx::Instance> instance;
  tdx::RelationId e = 0, s = 0;

  explicit Fixture(std::int64_t rows) {
    e = *schema.AddRelation("E", {"name", "company"}, tdx::SchemaRole::kSource);
    s = *schema.AddRelation("S", {"name", "salary"}, tdx::SchemaRole::kSource);
    instance = std::make_unique<tdx::Instance>(&schema);
    for (std::int64_t i = 0; i < rows; ++i) {
      instance->Insert(
          e, {u.Constant("p" + std::to_string(i)),
              u.Constant("c" + std::to_string(i % 17))});
      instance->Insert(
          s, {u.Constant("p" + std::to_string(i)),
              u.Constant("s" + std::to_string(i % 23))});
    }
  }
};

tdx::Atom MakeAtom(tdx::RelationId rel, std::vector<tdx::Term> terms) {
  tdx::Atom atom;
  atom.rel = rel;
  atom.terms = std::move(terms);
  return atom;
}

void BM_PointLookup(benchmark::State& state) {
  Fixture fx(state.range(0));
  tdx::Conjunction conj;
  conj.atoms = {MakeAtom(fx.e, {tdx::Term::Val(fx.u.Constant("p42")),
                                tdx::Term::Var(0)})};
  conj.num_vars = 1;
  tdx::HomomorphismFinder finder(*fx.instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.Exists(conj, tdx::Binding(1)));
  }
}
BENCHMARK(BM_PointLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StarJoin(benchmark::State& state) {
  Fixture fx(state.range(0));
  // E(n, c) & S(n, s): one hom per person.
  tdx::Conjunction conj;
  conj.atoms = {MakeAtom(fx.e, {tdx::Term::Var(0), tdx::Term::Var(1)}),
                MakeAtom(fx.s, {tdx::Term::Var(0), tdx::Term::Var(2)})};
  conj.num_vars = 3;
  std::size_t homs = 0;
  for (auto _ : state) {
    tdx::HomomorphismFinder finder(*fx.instance);
    homs = 0;
    finder.ForEach(conj, tdx::Binding(3),
                   [&](const tdx::Binding&, const tdx::AtomImage&) {
                     ++homs;
                     return true;
                   });
    benchmark::DoNotOptimize(homs);
  }
  state.counters["homs"] = static_cast<double>(homs);
  state.SetItemsProcessed(static_cast<std::int64_t>(homs) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StarJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SelectiveJoin(benchmark::State& state) {
  Fixture fx(state.range(0));
  // E(n, "c3") & S(n, s): company filter then join.
  tdx::Conjunction conj;
  conj.atoms = {MakeAtom(fx.e, {tdx::Term::Var(0),
                                tdx::Term::Val(fx.u.Constant("c3"))}),
                MakeAtom(fx.s, {tdx::Term::Var(0), tdx::Term::Var(1)})};
  conj.num_vars = 2;
  std::size_t homs = 0;
  for (auto _ : state) {
    tdx::HomomorphismFinder finder(*fx.instance);
    homs = 0;
    finder.ForEach(conj, tdx::Binding(2),
                   [&](const tdx::Binding&, const tdx::AtomImage&) {
                     ++homs;
                     return true;
                   });
    benchmark::DoNotOptimize(homs);
  }
  state.counters["homs"] = static_cast<double>(homs);
}
BENCHMARK(BM_SelectiveJoin)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CrossProductCapped(benchmark::State& state) {
  Fixture fx(state.range(0));
  // E(a, b) & E(c, d) unconstrained: quadratically many homs; enumerate the
  // first 10000 only (the chase's trigger dedup makes full enumeration
  // unnecessary in practice).
  tdx::Conjunction conj;
  conj.atoms = {MakeAtom(fx.e, {tdx::Term::Var(0), tdx::Term::Var(1)}),
                MakeAtom(fx.e, {tdx::Term::Var(2), tdx::Term::Var(3)})};
  conj.num_vars = 4;
  for (auto _ : state) {
    tdx::HomomorphismFinder finder(*fx.instance);
    std::size_t homs = 0;
    finder.ForEach(conj, tdx::Binding(4),
                   [&](const tdx::Binding&, const tdx::AtomImage&) {
                     return ++homs < 10000;
                   });
    benchmark::DoNotOptimize(homs);
  }
}
BENCHMARK(BM_CrossProductCapped)->Arg(1000)->Arg(10000);

}  // namespace
