// Observability overhead: the cost of enabled-but-unread metrics and
// uninstalled trace spans.
//
// The acceptance bar for the obs subsystem is that the engines with metrics
// enabled (the default) stay within 2% of the same engines with metrics
// disabled on the rounds-heavy cascade workload — the workload whose
// instrumented code paths (tgd rounds, normalize passes, egd fixpoints) run
// the most times per unit of real work. BM_CascadeObsAblation measures
// exactly that pair; diff the two arms to read the overhead.
//
// The micro-benches put numbers on the primitives those engine spans are
// built from: a counter increment, a histogram record, and a TraceSpan
// open/close with no tracer installed (the engines' steady state — a
// tracer only exists under tdx_cli --trace-out).

#include <benchmark/benchmark.h>

#include <optional>

#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

void BM_CascadeObsAblation(benchmark::State& state) {
  // Same chain-closure cascade as BM_TransitiveClosureAblation's semi-naive
  // arm. Arg: 1 = metrics enabled (default), 0 = metrics disabled.
  const bool enabled = (state.range(0) == 1);
  tdx::obs::MetricsRegistry::Instance().SetEnabled(enabled);
  tdx::ChainConfig cfg;
  cfg.hops = 64;
  auto w = tdx::MakeChainWorkload(cfg);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  tdx::obs::MetricsRegistry::Instance().SetEnabled(true);
  state.SetLabel(enabled ? "metrics on" : "metrics off");
  state.counters["reach_facts"] = static_cast<double>(last->target.size());
}
BENCHMARK(BM_CascadeObsAblation)->Arg(1)->Arg(0);

void BM_CounterInc(benchmark::State& state) {
  static tdx::obs::Counter counter("bench.obs.counter");
  for (auto _ : state) {
    counter.Inc();
  }
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDisabled(benchmark::State& state) {
  static tdx::obs::Counter counter("bench.obs.counter_disabled");
  tdx::obs::MetricsRegistry::Instance().SetEnabled(false);
  for (auto _ : state) {
    counter.Inc();
  }
  tdx::obs::MetricsRegistry::Instance().SetEnabled(true);
}
BENCHMARK(BM_CounterIncDisabled);

void BM_HistogramRecord(benchmark::State& state) {
  static tdx::obs::Histogram histogram("bench.obs.histogram");
  std::uint64_t sample = 0;
  for (auto _ : state) {
    histogram.Record(sample++ & 0xffff);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanNoTracer(benchmark::State& state) {
  // The engines' steady state: spans are opened everywhere, a tracer is
  // installed only under --trace-out. This is one relaxed load + branch.
  for (auto _ : state) {
    TDX_TRACE_SPAN("bench.obs.span");
  }
}
BENCHMARK(BM_SpanNoTracer);

void BM_SpanWithTracer(benchmark::State& state) {
  tdx::obs::Tracer tracer;
  tdx::obs::ScopedTracer installed(&tracer);
  for (auto _ : state) {
    TDX_TRACE_SPAN("bench.obs.span");
  }
  state.counters["events"] = static_cast<double>(tracer.event_count());
}
BENCHMARK(BM_SpanWithTracer);

}  // namespace
