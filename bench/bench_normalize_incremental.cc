// Experiment INC-NORM: incremental vs full target normalization inside the
// c-chase (core/normalize_incremental.h).
//
// The cascade workload (gen/workload.h, MakeCascadeWorkload) forces the
// chase through `stages` outer iterations: each hop mints an annotated
// null that only an egd merge can resolve, so every stage runs one
// post-rewrite full normalization pass and one post-rounds pass whose
// delta is ~2 facts. A block of co-valid ballast facts (an effect-free
// egd's lhs, quadratically many homs per key) dominates the full pass's
// sweep; the incremental pass proves those components untouched and
// copies them through. range(0)
// toggles CChaseOptions::incremental_normalize — the output is
// bit-identical either way (asserted in normalize_incremental_test.cc);
// only the time differs. CI gates full/incremental >= 1.5x (bench-smoke).

#include <benchmark/benchmark.h>

#include <optional>

#include "src/core/cchase.h"
#include "src/gen/workload.h"

namespace {

tdx::CascadeConfig BenchConfig() {
  tdx::CascadeConfig cfg;
  cfg.stages = 12;
  cfg.ballast_keys = 60;
  cfg.ballast_dup = 30;
  cfg.horizon = 8;
  return cfg;
}

void ReportNorm(benchmark::State& state, const tdx::CChaseOutcome& outcome) {
  state.counters["tgt_facts"] = static_cast<double>(outcome.target.size());
  state.counters["norm_homs"] =
      static_cast<double>(outcome.target_norm_stats.homomorphisms);
  state.counters["reused"] =
      static_cast<double>(outcome.target_norm_stats.reused_components);
  state.counters["egd_steps"] = static_cast<double>(outcome.stats.egd_steps);
}

/// range(0): 0 = full re-normalization every pass, 1 = incremental.
void BM_CascadeNormalize(benchmark::State& state) {
  auto w = tdx::MakeCascadeWorkload(BenchConfig());
  tdx::CChaseOptions options;
  options.incremental_normalize = state.range(0) != 0;
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  ReportNorm(state, *last);
}
BENCHMARK(BM_CascadeNormalize)->Arg(0)->Arg(1);

/// Incremental with parallel component fragmentation (4 workers); the
/// output stays identical, only the fragmentation fan-out widens.
void BM_CascadeNormalizeParallel(benchmark::State& state) {
  auto w = tdx::MakeCascadeWorkload(BenchConfig());
  tdx::CChaseOptions options;
  options.incremental_normalize = true;
  options.jobs = static_cast<unsigned>(state.range(0));
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  ReportNorm(state, *last);
}
BENCHMARK(BM_CascadeNormalizeParallel)->Arg(2)->Arg(4);

}  // namespace
