// Checkpointing overhead: offering safe points must be near-free, and the
// default cadence (persist every 16th round-level point, boundaries always)
// must keep a fully checkpointed run within 5% of an unhooked one.
//
//  * BM_CChaseNoCheckpoint — the baseline c-chase.
//  * BM_CChaseOfferOnly — checkpointer attached but cadence so sparse that
//    build() never runs at a round point: the cost of the offer plumbing.
//  * BM_CChaseInMemory / BM_CChaseInMemoryEveryRound — in-memory retention
//    at the default cadence and at cadence 1 (every safe point builds a
//    full copy of the target — the worst case the chaos tests run under).
//  * BM_CChaseToDisk — durable writes at the default cadence: serialize +
//    temp file + atomic rename per persisted point.
//  * BM_SerializeCheckpoint / BM_ParseCheckpoint — the encoding in
//    isolation, for sizing the per-write cost.
//
// Compare with: ./bench_checkpoint --benchmark_filter=CChase

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>

#include "src/common/checkpoint.h"
#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/parser/serialize.h"

namespace {

std::unique_ptr<tdx::Workload> MakeInstance(std::int64_t people) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.num_companies = 10;
  cfg.avg_jobs = 3;
  cfg.horizon = 100;
  cfg.salary_known_fraction = 0.7;
  cfg.seed = 13;
  return tdx::MakeEmploymentWorkload(cfg);
}

void RunChase(benchmark::State& state, const std::string& path,
              std::size_t cadence, double max_overhead) {
  std::optional<tdx::CChaseOutcome> last;
  std::size_t writes = 0;
  std::size_t safe_points = 0;
  for (auto _ : state) {
    // A fresh workload per iteration: reusing one Universe would let nulls
    // minted by earlier iterations pile up, and the checkpoint's null-name
    // capture would bill that pile to the checkpointed variants only.
    state.PauseTiming();
    auto w = MakeInstance(state.range(0));
    tdx::Checkpointer checkpointer(path, &w->schema, &w->universe);
    checkpointer.set_cadence(cadence);
    checkpointer.set_max_overhead(max_overhead);
    tdx::CChaseOptions options;
    options.checkpointer = &checkpointer;
    state.ResumeTiming();
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
    writes = checkpointer.writes();
    safe_points = checkpointer.safe_points();
  }
  if (!path.empty()) std::remove(path.c_str());
  if (last.has_value()) {
    state.counters["tgd_fires"] = static_cast<double>(last->stats.tgd_fires);
  }
  state.counters["safe_points"] = static_cast<double>(safe_points);
  state.counters["writes"] = static_cast<double>(writes);
}

void BM_CChaseNoCheckpoint(benchmark::State& state) {
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    state.PauseTiming();
    auto w = MakeInstance(state.range(0));
    state.ResumeTiming();
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  if (last.has_value()) {
    state.counters["tgd_fires"] = static_cast<double>(last->stats.tgd_fires);
  }
}
BENCHMARK(BM_CChaseNoCheckpoint)->Arg(50)->Arg(200);

void BM_CChaseOfferOnly(benchmark::State& state) {
  // Cadence beyond any real round count: round points never build, only
  // the handful of phase boundaries do. Measures the offer plumbing.
  RunChase(state, "", 1u << 30, 0.05);
}
BENCHMARK(BM_CChaseOfferOnly)->Arg(50)->Arg(200);

void BM_CChaseInMemory(benchmark::State& state) {
  // Default cadence + default overhead throttle: the acceptance bar is a
  // <= 5% delta against BM_CChaseNoCheckpoint.
  RunChase(state, "", 16, 0.05);
}
BENCHMARK(BM_CChaseInMemory)->Arg(50)->Arg(200);

void BM_CChaseInMemoryEveryRound(benchmark::State& state) {
  // Throttle off, every safe point persists: the chaos-test worst case.
  RunChase(state, "", 1, 0.0);
}
BENCHMARK(BM_CChaseInMemoryEveryRound)->Arg(50)->Arg(200);

void BM_CChaseToDisk(benchmark::State& state) {
  RunChase(state, "bench_checkpoint.tdxckpt", 16, 0.05);
}
BENCHMARK(BM_CChaseToDisk)->Arg(50)->Arg(200);

void BM_SerializeCheckpoint(benchmark::State& state) {
  auto w = MakeInstance(state.range(0));
  tdx::Checkpointer checkpointer("", &w->schema, &w->universe);
  checkpointer.set_cadence(1);
  tdx::CChaseOptions options;
  options.checkpointer = &checkpointer;
  auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
  if (!outcome.ok() || !checkpointer.latest().has_value()) {
    state.SkipWithError("chase failed");
    return;
  }
  for (auto _ : state) {
    auto text = tdx::SerializeCheckpoint(*checkpointer.latest(), w->schema,
                                         w->universe);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_SerializeCheckpoint)->Arg(50)->Arg(200);

void BM_ParseCheckpoint(benchmark::State& state) {
  auto w = MakeInstance(state.range(0));
  tdx::Checkpointer checkpointer("", &w->schema, &w->universe);
  checkpointer.set_cadence(1);
  tdx::CChaseOptions options;
  options.checkpointer = &checkpointer;
  auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
  auto text = outcome.ok() && checkpointer.latest().has_value()
                  ? tdx::SerializeCheckpoint(*checkpointer.latest(),
                                             w->schema, w->universe)
                  : tdx::Result<std::string>(
                        tdx::Status::Internal("chase failed"));
  if (!text.ok()) {
    state.SkipWithError("chase failed");
    return;
  }
  for (auto _ : state) {
    auto parsed = tdx::ParseCheckpoint(*text, &w->schema, &w->universe);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseCheckpoint)->Arg(50)->Arg(200);

}  // namespace
