// Experiment C-NVN (Section 4.2 trade-off; Figures 5 vs 6).
//
// Compares the two normalizers on employment-shaped instances:
//  * the naive endpoint normalizer — O(n log n) time, but fragments every
//    fact at every endpoint of the instance;
//  * Algorithm 1, norm(Ic, Phi+) — pays for homomorphism enumeration but
//    fragments only facts that actually co-occur in a conjunction image.
//
// The paper's qualitative claims to reproduce:
//  1. naive is asymptotically faster per fact;
//  2. norm's output is never larger and usually markedly smaller
//     (9 vs 14 facts on the paper's own example);
//  3. both outputs satisfy the empty intersection property.
//
// Counters: out_facts (output size), ratio (output/input), groups.

#include <benchmark/benchmark.h>

#include "src/core/normalize.h"
#include "src/gen/workload.h"

namespace {

std::unique_ptr<tdx::Workload> MakeInstance(std::int64_t people) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.num_companies = 10;
  cfg.avg_jobs = 3;
  cfg.horizon = 100;
  cfg.salary_known_fraction = 0.7;
  cfg.seed = 7;
  return tdx::MakeEmploymentWorkload(cfg);
}

void BM_NormalizeAlgorithm1(benchmark::State& state) {
  auto w = MakeInstance(state.range(0));
  const auto phis = w->lifted.TgdBodies();
  tdx::NormalizeStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance out = tdx::Normalize(w->source, phis, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["in_facts"] = static_cast<double>(stats.input_facts);
  state.counters["out_facts"] = static_cast<double>(stats.output_facts);
  state.counters["ratio"] = static_cast<double>(stats.output_facts) /
                            static_cast<double>(stats.input_facts);
  state.counters["groups"] = static_cast<double>(stats.groups);
}
BENCHMARK(BM_NormalizeAlgorithm1)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_NormalizeNaive(benchmark::State& state) {
  auto w = MakeInstance(state.range(0));
  tdx::NormalizeStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance out = tdx::NaiveNormalize(w->source, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["in_facts"] = static_cast<double>(stats.input_facts);
  state.counters["out_facts"] = static_cast<double>(stats.output_facts);
  state.counters["ratio"] = static_cast<double>(stats.output_facts) /
                            static_cast<double>(stats.input_facts);
}
BENCHMARK(BM_NormalizeNaive)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

// The paper's own 5-fact instance (Figures 4-6): 9 vs 14 output facts.
void BM_NormalizePaperExample(benchmark::State& state) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = 0;
  auto w = tdx::MakeEmploymentWorkload(cfg);
  auto add = [&](const char* rel, const char* a, const char* b,
                 const tdx::Interval& iv) {
    (void)w->source.Add(*w->schema.Find(rel),
                        {w->universe.Constant(a), w->universe.Constant(b)},
                        iv);
  };
  add("E+", "Ada", "IBM", tdx::Interval(2012, 2014));
  add("E+", "Ada", "Google", tdx::Interval::FromStart(2014));
  add("E+", "Bob", "IBM", tdx::Interval(2013, 2018));
  add("S+", "Ada", "18k", tdx::Interval::FromStart(2013));
  add("S+", "Bob", "13k", tdx::Interval::FromStart(2015));

  const bool naive = state.range(0) == 1;
  tdx::NormalizeStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance out =
        naive ? tdx::NaiveNormalize(w->source, &stats)
              : tdx::Normalize(w->source, w->lifted.TgdBodies(), &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(naive ? "naive (Figure 6: 14 facts)"
                       : "norm (Figure 5: 9 facts)");
  state.counters["out_facts"] = static_cast<double>(stats.output_facts);
}
BENCHMARK(BM_NormalizePaperExample)->Arg(0)->Arg(1);

}  // namespace
