// Experiment T13 (Theorem 13): the normalized instance is O(n^2) in the
// worst case. The workload is the nested-interval family R(a_i)@[i, 2n-i)
// under the pairing conjunction R+(x,t) & R+(y,t): one overlap group with
// 2n distinct endpoints, so the output has exactly n^2 facts.
//
// The counter `out_facts` should follow n^2 and `quad_ratio` should sit at
// 1.0 across the sweep, empirically validating the bound being tight.

#include <benchmark/benchmark.h>

#include "src/core/normalize.h"
#include "src/gen/workload.h"

namespace {

void BM_WorstCaseNormalize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto w = tdx::MakeWorstCaseNormalizationWorkload(n);
  const auto phis = w->lifted.TgdBodies();
  tdx::NormalizeStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance out = tdx::Normalize(w->source, phis, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["out_facts"] = static_cast<double>(stats.output_facts);
  state.counters["quad_ratio"] =
      static_cast<double>(stats.output_facts) / static_cast<double>(n * n);
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_WorstCaseNormalize)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Complexity();

// The naive normalizer hits the same quadratic output on this family but
// without the homomorphism enumeration cost.
void BM_WorstCaseNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto w = tdx::MakeWorstCaseNormalizationWorkload(n);
  tdx::NormalizeStats stats;
  for (auto _ : state) {
    tdx::ConcreteInstance out = tdx::NaiveNormalize(w->source, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["out_facts"] = static_cast<double>(stats.output_facts);
  state.counters["quad_ratio"] =
      static_cast<double>(stats.output_facts) / static_cast<double>(n * n);
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_WorstCaseNaive)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Complexity();

}  // namespace
