// Experiment C-TTGD (extension): target-tgd chase scaling.
//
// Per-snapshot transitive closure of random flight schedules, computed on
// the concrete view: the target tgd Reach(x,y) & Reach(y,z) -> Reach(x,z)
// closes reachability within every run of co-valid flights. Sweeps the
// schedule size and the connectivity (flights per airport); counters report
// the closure blow-up (reach facts per flight fact) and round counts.

#include <benchmark/benchmark.h>

#include <optional>

#include "src/core/cchase.h"
#include "src/gen/workload.h"

namespace {

void BM_TransitiveClosureBySize(benchmark::State& state) {
  tdx::FlightConfig cfg;
  cfg.num_flights = static_cast<std::size_t>(state.range(0));
  cfg.num_airports = cfg.num_flights / 3 + 2;
  cfg.horizon = 40;
  cfg.seed = 11;
  auto w = tdx::MakeFlightWorkload(cfg);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.counters["flights"] = static_cast<double>(w->source.size());
  state.counters["reach_facts"] = static_cast<double>(last->target.size());
  state.counters["blowup"] = static_cast<double>(last->target.size()) /
                             static_cast<double>(w->source.size());
}
BENCHMARK(BM_TransitiveClosureBySize)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_TransitiveClosureByDensity(benchmark::State& state) {
  // Fixed flight count over fewer airports: denser graphs, bigger closures.
  tdx::FlightConfig cfg;
  cfg.num_flights = 60;
  cfg.num_airports = static_cast<std::size_t>(state.range(0));
  cfg.horizon = 40;
  cfg.seed = 11;
  auto w = tdx::MakeFlightWorkload(cfg);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.counters["airports"] = static_cast<double>(cfg.num_airports);
  state.counters["reach_facts"] = static_cast<double>(last->target.size());
}
BENCHMARK(BM_TransitiveClosureByDensity)->Arg(30)->Arg(15)->Arg(8);

void BM_TransitiveClosureAblation(benchmark::State& state) {
  // Rounds-heavy cascade: the linear chain closure takes `hops` chase
  // rounds. The naive engine re-enumerates the full Reach ⋈ Edge join
  // every round (O(hops^3) triggers total); the semi-naive engine only
  // joins each round's delta against the edges (O(hops^2)).
  // Arg: 1 = semi-naive, 0 = naive.
  tdx::ChainConfig cfg;
  cfg.hops = 64;
  auto w = tdx::MakeChainWorkload(cfg);
  tdx::CChaseOptions opts;
  opts.semi_naive = (state.range(0) == 1);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, opts);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.SetLabel(opts.semi_naive ? "semi-naive" : "naive rounds");
  state.counters["reach_facts"] = static_cast<double>(last->target.size());
  state.counters["tgd_triggers"] =
      static_cast<double>(last->stats.tgd_triggers);
  state.counters["tgd_fires"] = static_cast<double>(last->stats.tgd_fires);
}
BENCHMARK(BM_TransitiveClosureAblation)->Arg(1)->Arg(0);

void BM_StratifiedChaseAblation(benchmark::State& state) {
  // Chase-planner ablation on the multi-stratum pipeline: the planner
  // proves the Audit-status egd effect-free (its only writer pins the
  // column to one constant), so the scheduled engine skips the Audit
  // self-join fixpoint and its follow-up normalization pass; the flat
  // engine re-runs both to a no-op over the O(hops^2) closure.
  // Arg: 1 = scheduled, 0 = flat.
  tdx::StratifiedConfig cfg;
  cfg.hops = 48;
  auto w = tdx::MakeStratifiedWorkload(cfg);
  tdx::CChaseOptions opts;
  opts.scheduled = (state.range(0) == 1);
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, opts);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  state.SetLabel(opts.scheduled ? "scheduled" : "flat");
  state.counters["tgt_facts"] = static_cast<double>(last->target.size());
  state.counters["egd_steps"] = static_cast<double>(last->stats.egd_steps);
  state.counters["schedule_strata"] =
      static_cast<double>(last->stats.schedule_strata);
  state.counters["skipped_egd_passes"] =
      static_cast<double>(last->stats.skipped_egd_passes);
}
BENCHMARK(BM_StratifiedChaseAblation)->Arg(1)->Arg(0);

}  // namespace
