// Resource-guard overhead: the governance layer must be invisible when no
// limits are set. Three measurements:
//
//  * BM_CChaseUngoverned / BM_CChaseDefaultLimits — the c-chase hot path
//    with default (unlimited) ChaseLimits; the pair quantifies the cost of
//    the guard plumbing itself (acceptance bar: within 2%, i.e. noise).
//  * BM_CChaseGenerousLimits — every budget set but far above the real
//    cost, so the counting slow path runs without ever tripping.
//  * BM_GuardChargeUnlimited / BM_GuardChargeCounting — the raw per-charge
//    cost in isolation (one branch vs. branch + increment + compare).
//
// Compare with: ./bench_guard_overhead --benchmark_filter=CChase

#include <benchmark/benchmark.h>

#include <optional>

#include "src/common/resource.h"
#include "src/core/cchase.h"
#include "src/gen/workload.h"

namespace {

std::unique_ptr<tdx::Workload> MakeInstance(std::int64_t people) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = static_cast<std::size_t>(people);
  cfg.num_companies = 10;
  cfg.avg_jobs = 3;
  cfg.horizon = 100;
  cfg.salary_known_fraction = 0.7;
  cfg.seed = 13;
  return tdx::MakeEmploymentWorkload(cfg);
}

void RunChase(benchmark::State& state, const tdx::ChaseLimits& limits) {
  auto w = MakeInstance(state.range(0));
  tdx::CChaseOptions options;
  options.limits = limits;
  std::optional<tdx::CChaseOutcome> last;
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe, options);
    benchmark::DoNotOptimize(outcome);
    if (outcome.ok()) last = std::move(outcome).value();
  }
  if (last.has_value()) {
    state.counters["tgd_fires"] = static_cast<double>(last->stats.tgd_fires);
    state.counters["aborted"] =
        last->kind == tdx::ChaseResultKind::kAborted ? 1 : 0;
  }
}

void BM_CChaseUngoverned(benchmark::State& state) {
  // Identical to BM_CChaseDefaultLimits by construction; kept as a separate
  // benchmark so a regression in the default-limits path shows up as a
  // delta between adjacent rows.
  RunChase(state, tdx::ChaseLimits{});
}
BENCHMARK(BM_CChaseUngoverned)->Arg(50)->Arg(200);

void BM_CChaseDefaultLimits(benchmark::State& state) {
  RunChase(state, tdx::ChaseLimits{});
}
BENCHMARK(BM_CChaseDefaultLimits)->Arg(50)->Arg(200);

void BM_CChaseGenerousLimits(benchmark::State& state) {
  tdx::ChaseLimits limits;
  limits.max_tgd_fires = 100'000'000;
  limits.max_egd_steps = 100'000'000;
  limits.max_fresh_nulls = 100'000'000;
  limits.max_facts = 100'000'000;
  limits.max_normalize_fragments = 100'000'000;
  RunChase(state, limits);
}
BENCHMARK(BM_CChaseGenerousLimits)->Arg(50)->Arg(200);

void BM_GuardChargeUnlimited(benchmark::State& state) {
  tdx::ResourceGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.ChargeTgdFire());
    benchmark::DoNotOptimize(guard.ChargeFact());
  }
}
BENCHMARK(BM_GuardChargeUnlimited);

void BM_GuardChargeCounting(benchmark::State& state) {
  tdx::ChaseLimits limits;
  limits.max_tgd_fires = tdx::kUnlimited - 1;  // counting path, never trips
  tdx::ResourceGuard guard(limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.ChargeTgdFire());
    benchmark::DoNotOptimize(guard.ChargeFact());
  }
}
BENCHMARK(BM_GuardChargeCounting);

}  // namespace
