// Experiment C-ALIGN (Corollary 20; the paper's core motivation).
//
// The abstract view is the semantics, the concrete view is what you can
// actually compute on: an abstract instance has one snapshot per time
// point, so chasing it directly costs time proportional to the timeline
// length, while the c-chase costs time proportional to the number of
// *change points*. This bench quantifies that gap:
//
//  * BM_ConcreteCChase        — the c-chase on Ic (horizon-independent);
//  * BM_AbstractChasePieces   — the piecewise abstract chase (one chase per
//                               run of identical snapshots; the best any
//                               snapshot-based evaluator could do);
//  * BM_AbstractChasePerPoint — materializing and chasing every single
//                               snapshot up to the horizon (the naive
//                               reading of the abstract semantics).
//
// Expected shape: per-point cost grows linearly with the horizon while the
// c-chase cost stays flat, with the crossover essentially at horizon ~
// number of change points.

#include <benchmark/benchmark.h>

#include "src/core/align.h"
#include "src/core/cchase.h"
#include "src/gen/workload.h"
#include "src/temporal/abstract_chase.h"

namespace {

std::unique_ptr<tdx::Workload> MakeInstance(tdx::TimePoint horizon) {
  tdx::EmploymentConfig cfg;
  cfg.num_people = 30;
  cfg.num_companies = 5;
  cfg.avg_jobs = 3;
  cfg.horizon = horizon;
  cfg.salary_known_fraction = 0.7;
  cfg.seed = 21;
  return tdx::MakeEmploymentWorkload(cfg);
}

void BM_ConcreteCChase(benchmark::State& state) {
  auto w = MakeInstance(static_cast<tdx::TimePoint>(state.range(0)));
  for (auto _ : state) {
    auto outcome = tdx::CChase(w->source, w->lifted, &w->universe);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["facts"] = static_cast<double>(w->source.size());
}
BENCHMARK(BM_ConcreteCChase)->Arg(50)->Arg(100)->Arg(400)->Arg(1600);

void BM_AbstractChasePieces(benchmark::State& state) {
  auto w = MakeInstance(static_cast<tdx::TimePoint>(state.range(0)));
  auto ia = tdx::AbstractInstance::FromConcrete(w->source);
  if (!ia.ok()) {
    state.SkipWithError("FromConcrete failed");
    return;
  }
  for (auto _ : state) {
    auto outcome = tdx::AbstractChase(*ia, w->mapping, &w->universe);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["pieces"] = static_cast<double>(ia->pieces().size());
}
BENCHMARK(BM_AbstractChasePieces)->Arg(50)->Arg(100)->Arg(400)->Arg(1600);

void BM_AbstractChasePerPoint(benchmark::State& state) {
  const auto horizon = static_cast<tdx::TimePoint>(state.range(0));
  auto w = MakeInstance(horizon);
  auto ia = tdx::AbstractInstance::FromConcrete(w->source);
  if (!ia.ok()) {
    state.SkipWithError("FromConcrete failed");
    return;
  }
  for (auto _ : state) {
    for (tdx::TimePoint l = 0; l <= horizon; ++l) {
      auto outcome = tdx::ChaseSnapshotAt(*ia, l, w->mapping, &w->universe);
      benchmark::DoNotOptimize(outcome);
    }
  }
  state.counters["snapshots"] = static_cast<double>(horizon + 1);
}
BENCHMARK(BM_AbstractChasePerPoint)->Arg(50)->Arg(100)->Arg(400);

// The alignment verifier itself (homomorphic-equivalence checking), the
// price of *certifying* Corollary 20 on a given instance.
void BM_VerifyCorollary20(benchmark::State& state) {
  auto w = MakeInstance(100);
  for (auto _ : state) {
    auto report = tdx::VerifyCorollary20(w->source, w->mapping, w->lifted,
                                         &w->universe);
    benchmark::DoNotOptimize(report);
    if (!report.ok() || !report->aligned()) {
      state.SkipWithError("alignment failed");
      return;
    }
  }
}
BENCHMARK(BM_VerifyCorollary20);

}  // namespace
